"""Windowed greedy baseline for SIM (Section 4's naive scheme).

The classic greedy of Nemhauser et al. applied directly to the current
window: start from ``S = ∅`` and repeatedly add the user maximising the
marginal influence gain, giving the best-possible ``(1 − 1/e)`` ratio for
monotone submodular maximisation under a cardinality constraint.  As in the
paper, no intermediate state is kept across windows — every query recomputes
from the window's exact influence sets, which is why greedy cannot keep up
with fast streams (the motivating observation of Section 1).

The implementation uses CELF lazy evaluation (Leskovec et al. 2007): cached
marginal gains are re-evaluated only when they surface at the top of a
max-heap, which is admissible because submodularity makes stale gains upper
bounds.  This only speeds greedy up — the selected seeds are identical to
the naive ``O(k·|U|)`` loop.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.base import (
    STATE_FORMAT_VERSION,
    SIMAlgorithm,
    SIMResult,
    check_state_header,
)
from repro.core.diffusion import ActionRecord
from repro.core.influence_index import WindowInfluenceIndex
from repro.influence.functions import (
    CardinalityInfluence,
    InfluenceFunction,
    function_from_state,
)

__all__ = ["WindowedGreedy", "greedy_seed_selection"]


def greedy_seed_selection(
    index,
    candidates,
    k: int,
    func: InfluenceFunction,
    lazy: bool = True,
) -> Tuple[Set[int], float]:
    """Greedy on an influence index; returns ``(seeds, value)``.

    Args:
        index: Any influence index exposing ``influence_set``/``coverage``.
        candidates: Iterable of candidate seed users.
        k: Maximum number of seeds.
        func: Monotone submodular influence function.
        lazy: Use CELF lazy evaluation (identical seeds, faster).  The
            paper's baseline is the naive ``O(k·|U|)`` loop — pass False to
            reproduce its cost profile in benchmarks.
    """
    if not lazy:
        return _naive_greedy(index, candidates, k, func)
    modular = func.modular
    covered: Set[int] = set()
    seeds: Set[int] = set()
    value = 0.0

    def gain_of(user: int) -> float:
        if modular:
            weight = func.weight
            return sum(
                weight(v) for v in index.influence_set(user) if v not in covered
            )
        return func.evaluate(list(seeds) + [user], index) - value

    # Max-heap of (-cached_gain, user, round_stamp); stale stamps trigger
    # re-evaluation (CELF).
    heap: List[Tuple[float, int, int]] = []
    for user in candidates:
        gain = gain_of(user)
        if gain > 0.0:
            heap.append((-gain, user, 0))
    heapq.heapify(heap)

    round_stamp = 0
    while heap and len(seeds) < k:
        neg_gain, user, stamp = heapq.heappop(heap)
        if user in seeds:
            continue
        if stamp != round_stamp:
            fresh = gain_of(user)
            if fresh > 0.0:
                heapq.heappush(heap, (-fresh, user, round_stamp))
            continue
        if -neg_gain <= 0.0:
            break
        seeds.add(user)
        if modular:
            covered.update(index.influence_set(user))
            value += -neg_gain
        else:
            value = func.evaluate(seeds, index)
        round_stamp += 1

    return seeds, value


def _naive_greedy(
    index, candidates, k: int, func: InfluenceFunction
) -> Tuple[Set[int], float]:
    """The paper's plain greedy: re-scan every candidate per iteration."""
    candidate_list = list(candidates)
    modular = func.modular
    covered: Set[int] = set()
    seeds: Set[int] = set()
    value = 0.0
    weight = func.weight if modular else None
    for _ in range(k):
        best_user = None
        best_gain = 0.0
        for user in candidate_list:
            if user in seeds:
                continue
            if modular:
                gain = sum(
                    weight(v)
                    for v in index.influence_set(user)
                    if v not in covered
                )
            else:
                gain = func.evaluate(list(seeds) + [user], index) - value
            if gain > best_gain:
                best_user, best_gain = user, gain
        if best_user is None:
            break
        seeds.add(best_user)
        if modular:
            covered.update(index.influence_set(best_user))
            value += best_gain
        else:
            value = func.evaluate(seeds, index)
    return seeds, value


class WindowedGreedy(SIMAlgorithm):
    """``(1 − 1/e)``-approximate SIM by per-query greedy recomputation."""

    def __init__(
        self,
        window_size: int,
        k: int,
        func: Optional[InfluenceFunction] = None,
        retention: Optional[int] = None,
        lazy: bool = True,
    ):
        """``lazy=False`` reproduces the paper's naive greedy baseline."""
        super().__init__(window_size=window_size, k=k, retention=retention)
        self._func = func if func is not None else CardinalityInfluence()
        self._index = WindowInfluenceIndex()
        self._lazy = lazy

    @property
    def index(self) -> WindowInfluenceIndex:
        """The exact windowed influence index the greedy runs on."""
        return self._index

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        for record in arrived:
            self._index.add(record)
        for record in expired:
            self._index.remove(record)

    def query(self) -> SIMResult:
        """Run greedy over the current window from scratch."""
        seeds, value = greedy_seed_selection(
            self._index,
            list(self._index.influencers()),
            self._k,
            self._func,
            lazy=self._lazy,
        )
        return SIMResult(time=self.now, seeds=frozenset(seeds), value=value)

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state: config, base bookkeeping, and index.

        The window index is serialized order-preserving (its iteration
        order seeds the greedy candidate list, which breaks ties in the
        naive ``lazy=False`` mode), so a restored run selects exactly the
        seeds an uninterrupted run would.
        """
        return {
            "format": STATE_FORMAT_VERSION,
            "algorithm": "greedy",
            "config": {
                "window_size": self.window_size,
                "k": self._k,
                "func": self._func.to_state(),
                "retention": self._forest._retention,
                "lazy": self._lazy,
            },
            "base": self._base_state(),
            "index": self._index.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowedGreedy":
        """Rebuild a windowed greedy from :meth:`to_state` output."""
        check_state_header(state, "greedy")
        config = state["config"]
        algorithm = cls(
            window_size=config["window_size"],
            k=config["k"],
            func=function_from_state(config["func"]),
            retention=config["retention"],
            lazy=config["lazy"],
        )
        algorithm._restore_base(state["base"])
        algorithm._index = WindowInfluenceIndex.from_state(state["index"])
        return algorithm
