"""MultiQueryEngine: many SIM queries behind one ingest loop.

Real deployments rarely run a single query: a monitoring dashboard tracks
several ``k``/``β`` settings, per-topic campaigns, and per-region boards at
once.  The engine is the single place the stream is fed; registered
queries — plain :class:`~repro.core.base.SIMAlgorithm` instances and
filtered sub-stream queries from :mod:`repro.influence.queries` — all
advance together, and one call answers the whole board.

The engine is also the serving plane's write-side contract
(:mod:`repro.service`): it exposes ``now`` so a durability wrapper can
validate stream order, *publish hooks* fired with the fresh board after
every slide (the service swaps its immutable answer cache inside the
hook, at the slide boundary), per-query stats for ``/metrics``, and an
explicit ``to_state``/``from_state`` schema so a whole board of queries
can ride one snapshot + WAL.

(Each framework already shares ancestor resolution across its own
checkpoints through its diffusion forest; the engine adds the operational
layer: uniform feeding, naming, and collective answers.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.actions import Action
from repro.core.base import (
    STATE_FORMAT_VERSION,
    SIMAlgorithm,
    SIMResult,
    check_state_header,
)
from repro.influence.queries import FilteredSIM

__all__ = ["MultiQueryEngine"]

#: Signature of an answer publication hook: called after every processed
#: slide with the whole fresh board (query name -> answer).
PublishHook = Callable[[Dict[str, SIMResult]], None]


class MultiQueryEngine:
    """Fan one action stream out to many named SIM queries."""

    def __init__(self) -> None:
        self._algorithms: Dict[str, SIMAlgorithm] = {}
        self._filtered: Dict[str, FilteredSIM] = {}
        self._actions_processed = 0
        self._now = 0
        self._publish_hooks: List[PublishHook] = []

    # -- board management --------------------------------------------------

    def add(self, name: str, query) -> "MultiQueryEngine":
        """Register a SIM algorithm or a FilteredSIM under ``name``.

        Returns self for chaining.

        Raises:
            ValueError: when ``name`` is already registered (the message
                carries the offending name).
            TypeError: when ``query`` is neither a SIMAlgorithm nor a
                FilteredSIM.
        """
        if name in self._algorithms or name in self._filtered:
            raise ValueError(f"query name {name!r} already registered")
        if isinstance(query, FilteredSIM):
            self._filtered[name] = query
        elif isinstance(query, SIMAlgorithm):
            self._algorithms[name] = query
        else:
            raise TypeError(
                f"expected SIMAlgorithm or FilteredSIM, got {type(query).__name__}"
            )
        return self

    def remove(self, name: str):
        """Unregister and return the query behind ``name``.

        The query keeps its state, so a board manager can detach a query,
        keep answering it elsewhere, or re-``add`` it later.

        Raises:
            KeyError: when ``name`` is not registered (the message carries
                the offending name and the registered board).
        """
        if name in self._algorithms:
            return self._algorithms.pop(name)
        if name in self._filtered:
            return self._filtered.pop(name)
        raise KeyError(f"unknown query {name!r}; registered: {self.names()}")

    def names(self) -> List[str]:
        """Registered query names, sorted."""
        return sorted(list(self._algorithms) + list(self._filtered))

    def get(self, name: str):
        """The registered query object behind ``name`` (without detaching).

        Raises:
            KeyError: when ``name`` is not registered (the message carries
                the offending name and the registered board).
        """
        if name in self._algorithms:
            return self._algorithms[name]
        if name in self._filtered:
            return self._filtered[name]
        raise KeyError(f"unknown query {name!r}; registered: {self.names()}")

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is a registered query."""
        return name in self._algorithms or name in self._filtered

    def __len__(self) -> int:
        """Number of registered queries."""
        return len(self._algorithms) + len(self._filtered)

    # -- introspection -----------------------------------------------------

    @property
    def actions_processed(self) -> int:
        """Actions fanned out so far."""
        return self._actions_processed

    @property
    def now(self) -> int:
        """Timestamp of the latest processed action (0 before any)."""
        return self._now

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (the serving plane's ``/metrics``).

        Plain algorithms report the actions they consumed and their stream
        clock; filtered queries additionally report how many observed
        actions matched their predicate (the sub-stream selectivity).
        """
        stats: Dict[str, dict] = {}
        for name, algorithm in self._algorithms.items():
            stats[name] = {
                "kind": "algorithm",
                "actions_processed": algorithm.actions_processed,
                "time": algorithm.now,
            }
            self._add_plane_stats(stats[name], algorithm)
        for name, query in self._filtered.items():
            stats[name] = {
                "kind": "filtered",
                "observed": query.observed,
                "matched": query.matched,
                "actions_processed": query.algorithm.actions_processed,
                "time": query.algorithm.now,
            }
            self._add_plane_stats(stats[name], query.algorithm)
        return dict(sorted(stats.items()))

    @staticmethod
    def _add_plane_stats(entry: dict, algorithm) -> None:
        """Oracle-plane counters (columnar kernel vs object fallback)."""
        columnar = getattr(algorithm, "columnar", None)
        if columnar is None:
            return
        entry["columnar"] = columnar
        kernel = getattr(algorithm, "columnar_kernel", None)
        if kernel is not None:
            entry["kernel"] = kernel.stats()

    # -- publication -------------------------------------------------------

    def add_publish_hook(self, hook: PublishHook) -> None:
        """Call ``hook(answers)`` with the fresh board after every slide.

        Hooks run synchronously at the end of :meth:`process`, so a
        subscriber sees every slide boundary exactly once and in order —
        this is how the serving plane swaps its immutable answer cache
        without ever exposing mid-slide state.  Registering at least one
        hook makes every ``process`` call also answer the whole board.
        """
        self._publish_hooks.append(hook)

    # -- streaming ---------------------------------------------------------

    def process(self, batch: Sequence[Action]) -> None:
        """Feed one slide batch to every registered query."""
        if not batch:
            return
        for algorithm in self._algorithms.values():
            algorithm.process(batch)
        for query in self._filtered.values():
            for action in batch:
                query.observe(action)
        self._actions_processed += len(batch)
        self._now = batch[-1].time
        if self._publish_hooks:
            answers = self.query_all()
            for hook in self._publish_hooks:
                hook(answers)

    def supports_resolved(self) -> bool:
        """Whether every registered query can absorb pre-resolved slides.

        Filtered queries observe raw actions (their predicates run on the
        action, not its influence records), so a board holding any makes
        routed ingest impossible; likewise any algorithm that keeps the
        base-class refusal of ``_on_slide_resolved``.
        """
        if self._filtered:
            return False
        return all(
            type(a)._on_slide_resolved is not SIMAlgorithm._on_slide_resolved
            for a in self._algorithms.values()
        )

    def apply_resolved(self, resolved) -> None:
        """Feed one pre-resolved slide to every registered query.

        The routed-shard counterpart of :meth:`process`: the facade
        resolved the slide once and routed this shard its records.
        Boards holding filtered queries refuse — those need the raw
        actions (see :meth:`supports_resolved`).
        """
        if resolved.count == 0:
            return
        if self._filtered:
            raise ValueError(
                "filtered queries need raw actions and cannot run on "
                f"routed (pre-resolved) slides: {sorted(self._filtered)}; "
                "remove them or use broadcast ingest"
            )
        for algorithm in self._algorithms.values():
            algorithm.apply_resolved(resolved)
        self._actions_processed += len(resolved.records)
        self._now = resolved.last
        if self._publish_hooks:
            answers = self.query_all()
            for hook in self._publish_hooks:
                hook(answers)

    def query(self, name: str) -> SIMResult:
        """Answer one registered query."""
        if name in self._algorithms:
            return self._algorithms[name].query()
        if name in self._filtered:
            return self._filtered[name].query()
        raise KeyError(f"unknown query {name!r}; registered: {self.names()}")

    def query_all(self) -> Dict[str, SIMResult]:
        """Answer every registered query."""
        return {name: self.query(name) for name in self.names()}

    def query_candidates(self, name: str):
        """Seed-merge hook for one registered query (sharded read plane).

        Delegates to the algorithm's
        :meth:`~repro.core.base.SIMAlgorithm.query_candidates`; filtered
        queries (and algorithms without the hook) return ``None``, which
        makes the sharded merge fall back to the best single shard's
        answer for that query.

        Raises:
            KeyError: when ``name`` is not registered.
        """
        if name in self._filtered:
            return None
        if name not in self._algorithms:
            raise KeyError(
                f"unknown query {name!r}; registered: {self.names()}"
            )
        return self._algorithms[name].query_candidates()

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state of the whole board (no pickle).

        Serializes every registered algorithm through its own ``to_state``
        schema.  Filtered queries are rejected: their predicates are
        arbitrary callables with no durable representation, so a board
        holding them must run without a state dir (or keep the filtered
        queries outside the durable engine).
        """
        if self._filtered:
            raise ValueError(
                "filtered queries are not serializable (their predicates "
                "are arbitrary callables): "
                f"{sorted(self._filtered)}; remove them or run without "
                "durable state"
            )
        queries = {}
        config = {}
        for name, algorithm in self._algorithms.items():
            to_state = getattr(algorithm, "to_state", None)
            if to_state is None:
                raise ValueError(
                    f"query {name!r} ({type(algorithm).__name__}) does not "
                    "support state serialization (no to_state hook)"
                )
            state = to_state()
            queries[name] = state
            config[name] = {
                "algorithm": state.get("algorithm"),
                "config": state.get("config"),
            }
        return {
            "format": STATE_FORMAT_VERSION,
            "algorithm": "multi",
            "config": {"queries": config},
            "queries": queries,
            "now": self._now,
            "actions_processed": self._actions_processed,
        }

    @classmethod
    def from_state(cls, state: dict, loader) -> "MultiQueryEngine":
        """Rebuild a board from :meth:`to_state` output.

        Args:
            state: The serialized document.
            loader: Member-state loader (normally
                :func:`repro.persistence.serialize.algorithm_from_state`);
                injected so :mod:`repro.core` never imports the
                persistence plane.
        """
        check_state_header(state, "multi")
        engine = cls()
        for name, query_state in state["queries"].items():
            engine.add(name, loader(query_state))
        engine._now = state["now"]
        engine._actions_processed = state["actions_processed"]
        return engine
