"""MultiQueryEngine: many SIM queries behind one ingest loop.

Real deployments rarely run a single query: a monitoring dashboard tracks
several ``k``/``β`` settings, per-topic campaigns, and per-region boards at
once.  The engine is the single place the stream is fed; registered
queries — plain :class:`~repro.core.base.SIMAlgorithm` instances and
filtered sub-stream queries from :mod:`repro.influence.queries` — all
advance together, and one call answers the whole board.

(Each framework already shares ancestor resolution across its own
checkpoints through its diffusion forest; the engine adds the operational
layer: uniform feeding, naming, and collective answers.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm, SIMResult
from repro.influence.queries import FilteredSIM

__all__ = ["MultiQueryEngine"]


class MultiQueryEngine:
    """Fan one action stream out to many named SIM queries."""

    def __init__(self) -> None:
        self._algorithms: Dict[str, SIMAlgorithm] = {}
        self._filtered: Dict[str, FilteredSIM] = {}
        self._actions_processed = 0

    def add(self, name: str, query) -> "MultiQueryEngine":
        """Register a SIM algorithm or a FilteredSIM under ``name``.

        Returns self for chaining.
        """
        if name in self._algorithms or name in self._filtered:
            raise ValueError(f"query name {name!r} already registered")
        if isinstance(query, FilteredSIM):
            self._filtered[name] = query
        elif isinstance(query, SIMAlgorithm):
            self._algorithms[name] = query
        else:
            raise TypeError(
                f"expected SIMAlgorithm or FilteredSIM, got {type(query).__name__}"
            )
        return self

    @property
    def names(self) -> List[str]:
        """Registered query names (insertion order not guaranteed)."""
        return sorted(list(self._algorithms) + list(self._filtered))

    @property
    def actions_processed(self) -> int:
        """Actions fanned out so far."""
        return self._actions_processed

    def process(self, batch: Sequence[Action]) -> None:
        """Feed one slide batch to every registered query."""
        if not batch:
            return
        for algorithm in self._algorithms.values():
            algorithm.process(batch)
        for query in self._filtered.values():
            for action in batch:
                query.observe(action)
        self._actions_processed += len(batch)

    def query(self, name: str) -> SIMResult:
        """Answer one registered query."""
        if name in self._algorithms:
            return self._algorithms[name].query()
        if name in self._filtered:
            return self._filtered[name].query()
        raise KeyError(f"unknown query {name!r}; registered: {self.names}")

    def query_all(self) -> Dict[str, SIMResult]:
        """Answer every registered query."""
        return {name: self.query(name) for name in self.names}
