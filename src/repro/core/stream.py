"""Action stream sources and iteration helpers.

A *social stream* is any iterable of :class:`~repro.core.actions.Action`
whose timestamps are strictly increasing.  This module provides:

* :class:`ListStream` — an in-memory stream (used by tests and replays);
* :func:`validate_stream` — a pass-through iterator enforcing the stream
  contract (monotone timestamps, parents referencing the past);
* :func:`renumber` — normalise arbitrary ``(user, parent)`` event logs to
  contiguous 1-based timestamps;
* :func:`batched` — group a stream into the window-slide batches of size
  ``L`` used by Section 5.3's multiple-window-shift processing.

Streams are deliberately plain iterables so that generators (synthetic
datasets, file replays) can be consumed without materialising them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.core.actions import ROOT, Action

__all__ = ["ListStream", "validate_stream", "renumber", "batched"]


class ListStream:
    """An in-memory action stream backed by a list.

    Validates the stream contract eagerly at construction so that tests and
    examples fail fast on malformed inputs.
    """

    def __init__(self, actions: Iterable[Action]):
        self._actions: List[Action] = list(validate_stream(actions))
        self._users: "frozenset | None" = None

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __getitem__(self, index: int) -> Action:
        return self._actions[index]

    @property
    def users(self) -> frozenset:
        """The distinct users appearing in the stream.

        The stream is immutable after construction, so the set is computed
        once and the same frozenset is returned on every access.
        """
        if self._users is None:
            self._users = frozenset(a.user for a in self._actions)
        return self._users

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ListStream({len(self._actions)} actions)"


def validate_stream(actions: Iterable[Action]) -> Iterator[Action]:
    """Yield ``actions`` unchanged while enforcing the stream contract.

    Raises:
        ValueError: if timestamps are not strictly increasing, or an action
            responds to a parent that has not appeared yet.
    """
    last_time = 0
    seen_max = 0
    for action in actions:
        if action.time <= last_time:
            raise ValueError(
                f"timestamps must be strictly increasing: "
                f"{action.time} after {last_time}"
            )
        if action.parent != ROOT and action.parent > seen_max:
            raise ValueError(
                f"action {action.time} responds to unseen action {action.parent}"
            )
        last_time = action.time
        seen_max = max(seen_max, action.time)
        yield action


def renumber(events: Iterable[tuple]) -> List[Action]:
    """Build a valid stream from ``(user, parent_index_or_None)`` pairs.

    ``parent_index_or_None`` refers to the 0-based position of the parent
    event in the input sequence.  The result uses contiguous 1-based
    timestamps, as the frameworks expect.

    >>> [a.time for a in renumber([(7, None), (9, 0)])]
    [1, 2]
    """
    out: List[Action] = []
    for position, (user, parent_pos) in enumerate(events):
        time = position + 1
        if parent_pos is None:
            out.append(Action.root(time, user))
        else:
            if not 0 <= parent_pos < position:
                raise ValueError(
                    f"event {position}: parent position {parent_pos} "
                    "must reference an earlier event"
                )
            out.append(Action.response(time, user, parent_pos + 1))
    return out


def batched(actions: Iterable[Action], size: int) -> Iterator[Sequence[Action]]:
    """Group a stream into consecutive batches of ``size`` actions.

    The final batch may be shorter.  Used to drive window slides of
    ``L = size`` actions (Section 5.3).
    """
    if size <= 0:
        raise ValueError(f"batch size must be positive, got {size}")
    batch: List[Action] = []
    for action in actions:
        batch.append(action)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch
