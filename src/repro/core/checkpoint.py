"""Influential checkpoint: one append-only oracle over an action suffix.

A checkpoint ``Λ_t[i]`` (Section 4.1) maintains an ε-approximate SIM
solution for the contiguous actions ``{W_t[i], ..., W_t[N]}`` — i.e. for the
suffix of the stream starting at the checkpoint's *start time*.  It bundles

* a suffix influence index holding ``I_t[i](u)`` for every user observed in
  the suffix, and
* a :class:`~repro.core.oracles.base.CheckpointOracle` fed through the SSM
  steps: the index reports which users' influence sets grew, and the oracle
  re-processes exactly those users.

Two index arrangements exist:

* **standalone** (the reference implementation) — the checkpoint owns a
  private :class:`~repro.core.influence_index.AppendOnlyInfluenceIndex` and
  :meth:`Checkpoint.process` / :meth:`Checkpoint.process_slide` drive both
  index and oracle;
* **shared** — the checkpoint is built over a
  :class:`~repro.core.influence_index.SuffixView` of the framework's single
  :class:`~repro.core.influence_index.VersionedInfluenceIndex`.  The
  framework indexes each action once and dispatches oracle feeds to exactly
  the checkpoints whose suffix set grew (see :func:`feed_shared`).

**Slide semantics.**  A slide of ``L`` actions is one SSM event: all ``L``
records are applied to the index *first*, then each checkpoint's oracle
receives one merged delta ``(user, new_members)`` per updated user, in
first-update order.  With ``L = 1`` this degenerates to the per-action
model of Algorithm 1.  Batched mode hands a checkpoint's whole slide to the
oracle in a single :meth:`~repro.core.oracles.base.CheckpointOracle.process_batch`
call so per-slide bookkeeping is amortised; unbatched mode delivers the
same deltas one ``process_delta`` call at a time — the two are
result-identical (proven by ``tests/core/test_shared_index_equivalence``).

Checkpoints never see expiries: deletion of whole checkpoints is the IC/SIC
frameworks' job.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Sequence

from repro.core.diffusion import ActionRecord
from repro.core.influence_index import (
    AppendOnlyInfluenceIndex,
    VersionedInfluenceIndex,
)
from repro.core.oracles.base import CheckpointOracle, make_oracle
from repro.core.oracles.streaming_base import StreamingThresholdOracle

# Projection (narrowing resolved records to one shard's influencers) lives
# with the rest of the resolve-phase machinery; re-exported here because
# every checkpoint framework imports it from this module.
from repro.core.resolve import project_records
from repro.influence.functions import InfluenceFunction

__all__ = [
    "Checkpoint",
    "CheckpointRoster",
    "OracleSpec",
    "feed_shared",
    "make_columnar_kernel",
    "project_records",
]


def _columnar_module():
    """Import the numpy-backed kernel module.

    Isolated in a helper so tests can simulate a missing numpy, and so
    engines that never enable the columnar plane never pay the import.
    """
    from repro.core.oracles import columnar

    return columnar


def make_columnar_kernel(spec, shared, columnar, batch_feeds: bool = True):
    """Resolve an engine's oracle-plane choice to a kernel (or ``None``).

    Args:
        spec: The engine's :class:`OracleSpec`.
        shared: The engine's
            :class:`~repro.core.influence_index.VersionedInfluenceIndex`,
            or ``None`` in per-checkpoint reference mode.
        columnar: The engine's plane flag — ``True`` requires the columnar
            kernel (raising if unsupported), ``False`` forces the object
            plane, ``None`` auto-selects: columnar whenever supported.
        batch_feeds: The engine's dispatch-plane flag; the kernel *is* the
            batched plane, so unbatched engines keep object oracles.

    Returns:
        A ``ColumnarThresholdKernel`` when the columnar plane is active,
        else ``None`` (object-oracle plane).

    Raises:
        ValueError: ``columnar=True`` on an unsupported configuration.
        ImportError: ``columnar=True`` without numpy installed.
    """
    if columnar is False:
        return None
    reasons = []
    if shared is None:
        reasons.append("shared_index=False (per-checkpoint reference mode)")
    if not batch_feeds:
        reasons.append("batch_feeds=False (unbatched dispatch reference)")
    if not spec.func.modular:
        reasons.append(
            f"non-modular influence function {type(spec.func).__name__}"
        )
    elif spec.func.uniform_weight is None:
        # Admission gains for weighted members are float sums taken in each
        # object oracle's set-iteration order; the kernel's bitset popcount
        # gains can only reproduce the uniform-weight multiply exactly.
        reasons.append(
            f"non-uniform member weights ({type(spec.func).__name__}); "
            "the kernel computes admission gains as popcounts"
        )
    if not reasons:
        try:
            probe = spec.build(shared.view(1))
        except KeyError:
            # Unknown oracle names keep their pinned contract: the engine
            # constructs fine and raises on the first checkpoint build.
            probe = None
        if not isinstance(probe, StreamingThresholdOracle):
            reasons.append(
                f"oracle {spec.name!r} is not a threshold-guessing "
                "streaming oracle"
            )
        elif int(math.log(2 * spec.k) / probe._log_base) + 3 > 64:
            # The kernel packs per-checkpoint seed membership into uint64
            # masks, one bit per live guess instance.
            reasons.append(
                f"beta={probe._beta} spreads the guess ladder over more "
                "than 64 live instances per checkpoint"
            )
    if reasons:
        if columnar:
            raise ValueError(
                "columnar=True requires a shared-index engine with batched "
                "feeds, a modular uniform-weight influence function, and a "
                "sieve/threshold oracle; blocked by: " + "; ".join(reasons)
            )
        return None
    try:
        module = _columnar_module()
    except ImportError as exc:
        if columnar:
            raise ImportError(
                "columnar=True requires numpy (the columnar oracle kernel "
                "is array-backed); install numpy or pass columnar=False "
                "to keep the per-checkpoint object oracles"
            ) from exc
        return None
    return module.ColumnarThresholdKernel(spec, shared)




@dataclass(frozen=True)
class OracleSpec:
    """Recipe for building one checkpoint oracle.

    Attributes:
        name: Registered oracle name (``"sieve"``, ``"threshold"``, ...).
        k: Cardinality constraint of the SIM query.
        func: The influence function ``f``.
        params: Extra keyword arguments (e.g. ``{"beta": 0.2}`` for the
            threshold-guessing oracles).
    """

    name: str
    k: int
    func: InfluenceFunction
    params: dict = field(default_factory=dict)

    def build(self, index) -> CheckpointOracle:
        """Instantiate the oracle against a checkpoint index or suffix view."""
        return make_oracle(
            self.name, k=self.k, func=self.func, index=index, **self.params
        )


class Checkpoint:
    """``Λ_t[i]``: oracle + suffix influence index for one suffix."""

    __slots__ = (
        "start",
        "_index",
        "_oracle",
        "_actions_processed",
        "_ledger",
        "_absorbed_base",
    )

    def __init__(self, start: int, spec: OracleSpec, index=None, ledger=None):
        """
        Args:
            start: Timestamp of the first action this checkpoint covers.
            spec: Oracle recipe shared by all checkpoints of a framework.
            index: A :class:`~repro.core.influence_index.SuffixView` of the
                framework's shared index.  ``None`` (standalone/reference
                mode) gives the checkpoint a private
                :class:`~repro.core.influence_index.AppendOnlyInfluenceIndex`
                driven through :meth:`process` / :meth:`process_slide`.
            ledger: A :class:`CheckpointRoster` whose ``absorbed`` counter
                tracks the slide stream (shared-index mode).  Every live
                checkpoint absorbs every slide, so
                :attr:`actions_processed` is read off the shared counter
                instead of being incremented per checkpoint per slide.
        """
        if start <= 0:
            raise ValueError(f"checkpoint start must be positive, got {start}")
        self.start = start
        self._index = AppendOnlyInfluenceIndex() if index is None else index
        self._oracle = spec.build(self._index)
        self._actions_processed = 0
        self._ledger = ledger
        self._absorbed_base = ledger.absorbed if ledger is not None else 0

    def process(self, record: ActionRecord) -> None:
        """SSM steps (1)–(3) for one arriving action (standalone mode)."""
        if record.time < self.start:
            raise ValueError(
                f"checkpoint starting at {self.start} received "
                f"older action {record.time}"
            )
        self._actions_processed += 1
        for user in self._index.add(record):
            self.feed(user, record.user)

    def process_slide(self, records: Sequence[ActionRecord]) -> None:
        """One whole slide in standalone mode: index all, then feed merged.

        All of the slide's records enter the private index before any
        oracle work runs; the oracle then receives one
        ``(user, new_members)`` delta per updated user, in first-update
        order — the reference implementation of the slide semantics the
        shared dispatch plane reproduces.
        """
        index_add = self._index.add
        deltas: dict = {}
        for record in records:
            if record.time < self.start:
                raise ValueError(
                    f"checkpoint starting at {self.start} received "
                    f"older action {record.time}"
                )
            performer = record.user
            for user in index_add(record):
                members = deltas.get(user)
                if members is None:
                    deltas[user] = [performer]
                else:
                    members.append(performer)
        self._actions_processed += len(records)
        for user, members in deltas.items():
            self.feed_delta(user, members)

    def feed(self, user: int, new_member: int) -> None:
        """SSM steps (2)–(3): the oracle learns ``user`` gained ``new_member``.

        The suffix index already reflects the update — in standalone mode
        :meth:`process` applied it, in shared mode the framework's
        :class:`~repro.core.influence_index.VersionedInfluenceIndex` did.
        """
        self._oracle.process(user, new_member)

    def feed_delta(self, user: int, new_members: Sequence[int]) -> None:
        """Merged SSM event: ``user`` gained all of ``new_members``."""
        self._oracle.process_delta(user, new_members)

    def feed_batch(self, deltas) -> None:
        """A whole slide's merged deltas in one oracle call."""
        self._oracle.process_batch(deltas)

    @property
    def value(self) -> float:
        """The checkpoint's influence value Λ (monotone non-decreasing)."""
        return self._oracle.value

    @property
    def seeds(self) -> FrozenSet[int]:
        """The maintained seed users."""
        return self._oracle.seeds

    @property
    def oracle(self) -> CheckpointOracle:
        """The underlying oracle (for introspection/ablation)."""
        return self._oracle

    @property
    def index(self):
        """The suffix influence index ``I_t[i](·)`` (own index or view)."""
        return self._index

    @property
    def actions_processed(self) -> int:
        """How many actions this checkpoint has absorbed."""
        if self._ledger is not None:
            return (
                self._ledger.absorbed
                - self._absorbed_base
                + self._actions_processed
            )
        return self._actions_processed

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state: start, oracle state, and (if owned) index.

        Shared-mode checkpoints serialize ``index: None`` — their suffix
        sets live in the framework's
        :class:`~repro.core.influence_index.VersionedInfluenceIndex`,
        which the framework serializes once for all checkpoints.
        """
        owned = isinstance(self._index, AppendOnlyInfluenceIndex)
        return {
            "start": self.start,
            "actions_processed": self.actions_processed,
            "oracle": self._oracle.state_dict(),
            "index": self._index.to_state() if owned else None,
        }

    @classmethod
    def from_state(
        cls, state: dict, spec: OracleSpec, index=None, ledger=None
    ) -> "Checkpoint":
        """Rebuild a checkpoint from :meth:`to_state` output.

        Args:
            state: A :meth:`to_state` document.
            spec: The framework's shared oracle recipe.
            index: The checkpoint's restored
                :class:`~repro.core.influence_index.SuffixView` in shared
                mode; ``None`` restores the serialized private
                append-only index.
            ledger: The roster whose ``absorbed`` counter must already be
                restored — the checkpoint's action accounting is rebased
                on its current value.
        """
        if index is None and state["index"] is not None:
            index = AppendOnlyInfluenceIndex.from_state(state["index"])
        checkpoint = cls(state["start"], spec, index=index, ledger=ledger)
        checkpoint._oracle.load_state(state["oracle"])
        # actions_processed is a derived property in shared mode: rebase it
        # on the restored ledger so it resolves to the serialized total.
        checkpoint._actions_processed = state["actions_processed"]
        if ledger is not None:
            checkpoint._absorbed_base = ledger.absorbed
        return checkpoint

    def position(self, now: int, window_size: int) -> int:
        """The paper's relative index ``x_i`` within ``W_now``.

        ``1`` means the checkpoint covers the whole window; ``<= 0`` means it
        has expired (covers more actions than the window holds).
        """
        return self.start - (now - window_size)

    def covers_window(self, now: int, window_size: int) -> bool:
        """True while the checkpoint covers at most the window's actions."""
        return self.position(now, window_size) >= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpoint(start={self.start}, value={self.value:.1f}, "
            f"seeds={sorted(self.seeds)})"
        )


class CheckpointRoster:
    """Live checkpoints plus the parallel lists the dispatch plane reads.

    :func:`feed_shared` needs the sorted start times (for the bisect) and
    the bound ``feed`` methods (for the L=1 fast path) of every live
    checkpoint.  Rebuilding those lists from scratch each slide costs
    O(⌈N/L⌉) pointer work per slide, which showed up at ~2-3% for IC at
    L=1; the roster instead maintains them incrementally — appends touch
    the tail, expiry shifts are single C-level list pops, and only SIC's
    pruning (which already walks the population) rebuilds.  The
    ``absorbed`` slide counter likewise replaces a per-checkpoint
    accounting loop: every live checkpoint absorbs every slide, so one
    shared counter plus a per-checkpoint baseline recorded at append time
    yields each checkpoint's ``actions_processed``.
    """

    __slots__ = ("checkpoints", "starts", "feeds", "absorbed")

    def __init__(self) -> None:
        self.checkpoints: List[Checkpoint] = []
        self.starts: List[int] = []
        self.feeds: List[Callable[[int, int], None]] = []
        #: Total actions dispatched to this roster (the checkpoint ledger).
        self.absorbed: int = 0

    def append(self, checkpoint: Checkpoint) -> None:
        """Register the slide's newcomer (starts stay sorted by contract)."""
        self.checkpoints.append(checkpoint)
        self.starts.append(checkpoint.start)
        self.feeds.append(checkpoint.feed)

    def pop_oldest(self) -> Checkpoint:
        """Expire the head checkpoint."""
        self.starts.pop(0)
        self.feeds.pop(0)
        return self.checkpoints.pop(0)

    def replace(self, keep: List[Checkpoint]) -> None:
        """Swap in a pruned population (SIC's Algorithm 2 lines 9-20)."""
        self.checkpoints = keep
        self.starts = [checkpoint.start for checkpoint in keep]
        self.feeds = [checkpoint.feed for checkpoint in keep]

    def __len__(self) -> int:
        return len(self.checkpoints)

    def __getitem__(self, i: int) -> Checkpoint:
        return self.checkpoints[i]

    def __iter__(self):
        return iter(self.checkpoints)

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state: the ledger and every live checkpoint."""
        return {
            "absorbed": self.absorbed,
            "checkpoints": [c.to_state() for c in self.checkpoints],
        }

    @classmethod
    def from_state(
        cls, state: dict, spec: OracleSpec, shared=None, kernel=None
    ) -> "CheckpointRoster":
        """Rebuild a roster from :meth:`to_state` output.

        Args:
            state: A :meth:`to_state` document.
            spec: The framework's shared oracle recipe.
            shared: The framework's restored
                :class:`~repro.core.influence_index.VersionedInfluenceIndex`
                (checkpoints get fresh views of it), or ``None`` for the
                per-checkpoint reference mode.
            kernel: The framework's ``ColumnarThresholdKernel`` when the
                columnar plane is active — checkpoints restore as kernel
                columns instead of object oracles.  Snapshot documents are
                plane-agnostic, so either plane opens either document.
        """
        roster = cls()
        roster.absorbed = state["absorbed"]
        if kernel is not None:
            from repro.core.oracles.columnar import restore_checkpoint

            for checkpoint_state in state["checkpoints"]:
                roster.append(
                    restore_checkpoint(kernel, checkpoint_state, roster)
                )
            return roster
        for checkpoint_state in state["checkpoints"]:
            view = (
                shared.view(checkpoint_state["start"])
                if shared is not None
                else None
            )
            roster.append(
                Checkpoint.from_state(
                    checkpoint_state,
                    spec,
                    index=view,
                    ledger=roster if shared is not None else None,
                )
            )
        return roster


def feed_shared(
    shared: VersionedInfluenceIndex,
    roster: CheckpointRoster,
    arrived: Sequence[ActionRecord],
    batch: bool = True,
    absorbed: int = -1,
) -> None:
    """Index ``arrived`` once and dispatch oracle feeds to the roster.

    This is the shared-index hot path replacing the per-checkpoint loop:
    one :meth:`VersionedInfluenceIndex.add` per record (O(d) dict writes),
    then for each updated pair a ``bisect`` over the sorted checkpoint
    starts locates the first checkpoint whose suffix actually gained a
    member — only those are fed.

    For a single-record slide the feeds go straight to the oracles (the
    merged deltas would all be singletons).  For ``L > 1`` the slide's
    updates are first grouped into one ``{user: [new_members]}`` delta map
    per checkpoint — merging multiple new members per user — and each
    checkpoint receives its whole slide in one
    :meth:`Checkpoint.feed_batch` call (``batch=True``, amortising
    per-slide oracle bookkeeping) or as per-user
    :meth:`Checkpoint.feed_delta` calls (``batch=False``, the equivalence
    reference for the batched path).

    Per-action index and oracle work is O(d + feeds) instead of
    O(d · checkpoints) set probes.  Remaining per-slide overheads: one add
    to the roster's absorbed ledger (replacing the old O(checkpoints)
    per-checkpoint accounting loop), and — on the L>1 path only — one
    delta map per checkpoint, whose population is bounded by the feeds the
    oracles receive anyway.

    ``roster`` must hold checkpoints sorted by ascending start, every start
    at most the earliest arrived record's time (both invariants hold for
    IC's and SIC's rosters after appending the slide's newcomer).

    ``absorbed`` overrides the amount added to the roster's slide ledger;
    sharded engines pass the *unprojected* slide size there so checkpoint
    action accounting stays stream-global even when
    :func:`project_records` dropped pair-less records for this shard.
    """
    if absorbed < 0:
        absorbed = len(arrived)
    starts = roster.starts
    count = len(starts)
    if not count:
        return
    first_start = starts[0]
    if not arrived:
        roster.absorbed += absorbed
        return
    if len(arrived) == 1:
        record = arrived[0]
        performer = record.user
        feeds = roster.feeds
        for user, previous in shared.add(record):
            lo = 0 if previous < first_start else bisect_right(starts, previous)
            for i in range(lo, count):
                feeds[i](user, performer)
    else:
        # Sparse: only checkpoints that actually receive a feed get a delta
        # map, so per-slide overhead is O(checkpoints fed), not O(count).
        deltas: Dict[int, dict] = {}
        for performer, user, previous in shared.add_batch(arrived):
            lo = 0 if previous < first_start else bisect_right(starts, previous)
            for i in range(lo, count):
                delta = deltas.get(i)
                if delta is None:
                    deltas[i] = delta = {}
                members = delta.get(user)
                if members is None:
                    delta[user] = [performer]
                else:
                    members.append(performer)
        checkpoints = roster.checkpoints
        # Deliver oldest-first, matching the reference plane's checkpoint
        # order (oracles are independent, but deterministic order keeps the
        # planes' event logs comparable).
        if batch:
            for i in sorted(deltas):
                checkpoints[i].feed_batch(deltas[i].items())
        else:
            for i in sorted(deltas):
                feed_delta = checkpoints[i].feed_delta
                for user, members in deltas[i].items():
                    feed_delta(user, members)
    roster.absorbed += absorbed
