"""Influential checkpoint: one append-only oracle over an action suffix.

A checkpoint ``Λ_t[i]`` (Section 4.1) maintains an ε-approximate SIM
solution for the contiguous actions ``{W_t[i], ..., W_t[N]}`` — i.e. for the
suffix of the stream starting at the checkpoint's *start time*.  It bundles

* a suffix influence index holding ``I_t[i](u)`` for every user observed in
  the suffix, and
* a :class:`~repro.core.oracles.base.CheckpointOracle` fed through the SSM
  steps: the index reports which users' influence sets grew, and the oracle
  re-processes exactly those users.

Two index arrangements exist:

* **standalone** (the reference implementation) — the checkpoint owns a
  private :class:`~repro.core.influence_index.AppendOnlyInfluenceIndex` and
  :meth:`Checkpoint.process` drives both index and oracle per record;
* **shared** — the checkpoint is built over a
  :class:`~repro.core.influence_index.SuffixView` of the framework's single
  :class:`~repro.core.influence_index.VersionedInfluenceIndex`.  The
  framework indexes each action once and calls :meth:`Checkpoint.feed` for
  exactly the checkpoints whose suffix set grew (see :func:`feed_shared`).

Checkpoints never see expiries: deletion of whole checkpoints is the IC/SIC
frameworks' job.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import FrozenSet, Sequence

from repro.core.diffusion import ActionRecord
from repro.core.influence_index import (
    AppendOnlyInfluenceIndex,
    VersionedInfluenceIndex,
)
from repro.core.oracles.base import CheckpointOracle, make_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["Checkpoint", "OracleSpec", "feed_shared"]


@dataclass(frozen=True)
class OracleSpec:
    """Recipe for building one checkpoint oracle.

    Attributes:
        name: Registered oracle name (``"sieve"``, ``"threshold"``, ...).
        k: Cardinality constraint of the SIM query.
        func: The influence function ``f``.
        params: Extra keyword arguments (e.g. ``{"beta": 0.2}`` for the
            threshold-guessing oracles).
    """

    name: str
    k: int
    func: InfluenceFunction
    params: dict = field(default_factory=dict)

    def build(self, index) -> CheckpointOracle:
        """Instantiate the oracle against a checkpoint index or suffix view."""
        return make_oracle(
            self.name, k=self.k, func=self.func, index=index, **self.params
        )


class Checkpoint:
    """``Λ_t[i]``: oracle + suffix influence index for one suffix."""

    __slots__ = ("start", "_index", "_oracle", "_actions_processed")

    def __init__(self, start: int, spec: OracleSpec, index=None):
        """
        Args:
            start: Timestamp of the first action this checkpoint covers.
            spec: Oracle recipe shared by all checkpoints of a framework.
            index: A :class:`~repro.core.influence_index.SuffixView` of the
                framework's shared index.  ``None`` (standalone/reference
                mode) gives the checkpoint a private
                :class:`~repro.core.influence_index.AppendOnlyInfluenceIndex`
                driven through :meth:`process`.
        """
        if start <= 0:
            raise ValueError(f"checkpoint start must be positive, got {start}")
        self.start = start
        self._index = AppendOnlyInfluenceIndex() if index is None else index
        self._oracle = spec.build(self._index)
        self._actions_processed = 0

    def process(self, record: ActionRecord) -> None:
        """SSM steps (1)–(3) for one arriving action (standalone mode)."""
        if record.time < self.start:
            raise ValueError(
                f"checkpoint starting at {self.start} received "
                f"older action {record.time}"
            )
        self._actions_processed += 1
        for user in self._index.add(record):
            self.feed(user, record.user)

    def feed(self, user: int, new_member: int) -> None:
        """SSM steps (2)–(3): the oracle learns ``user`` gained ``new_member``.

        The suffix index already reflects the update — in standalone mode
        :meth:`process` applied it, in shared mode the framework's
        :class:`~repro.core.influence_index.VersionedInfluenceIndex` did.
        """
        self._oracle.process(user, new_member)

    def note_processed(self, count: int) -> None:
        """Account ``count`` absorbed actions (shared-index mode bookkeeping)."""
        self._actions_processed += count

    @property
    def value(self) -> float:
        """The checkpoint's influence value Λ (monotone non-decreasing)."""
        return self._oracle.value

    @property
    def seeds(self) -> FrozenSet[int]:
        """The maintained seed users."""
        return self._oracle.seeds

    @property
    def oracle(self) -> CheckpointOracle:
        """The underlying oracle (for introspection/ablation)."""
        return self._oracle

    @property
    def index(self):
        """The suffix influence index ``I_t[i](·)`` (own index or view)."""
        return self._index

    @property
    def actions_processed(self) -> int:
        """How many actions this checkpoint has absorbed."""
        return self._actions_processed

    def position(self, now: int, window_size: int) -> int:
        """The paper's relative index ``x_i`` within ``W_now``.

        ``1`` means the checkpoint covers the whole window; ``<= 0`` means it
        has expired (covers more actions than the window holds).
        """
        return self.start - (now - window_size)

    def covers_window(self, now: int, window_size: int) -> bool:
        """True while the checkpoint covers at most the window's actions."""
        return self.position(now, window_size) >= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpoint(start={self.start}, value={self.value:.1f}, "
            f"seeds={sorted(self.seeds)})"
        )


def feed_shared(
    shared: VersionedInfluenceIndex,
    checkpoints: Sequence[Checkpoint],
    arrived: Sequence[ActionRecord],
) -> None:
    """Index ``arrived`` once and fan oracle feeds out to ``checkpoints``.

    This is the shared-index hot path replacing the per-checkpoint loop: one
    :meth:`VersionedInfluenceIndex.add` per record (O(d) dict writes), then
    for each updated pair a ``bisect`` over the sorted checkpoint starts
    locates the first checkpoint whose suffix actually gained a member —
    only those are fed.  Per-action *index and oracle* work is O(d + feeds)
    instead of O(d · checkpoints) set probes; the call also performs
    O(checkpoints) per-slide pointer bookkeeping (start/feed lists and
    absorbed-action counters), whose constants are trivial next to a
    single oracle feed.

    ``checkpoints`` must be sorted by ascending start and every start must
    be at most the earliest arrived record's time (both invariants hold for
    IC's and SIC's checkpoint lists after appending the slide's newcomer).
    """
    starts = [checkpoint.start for checkpoint in checkpoints]
    feeds = [checkpoint.feed for checkpoint in checkpoints]
    count = len(checkpoints)
    add = shared.add
    for record in arrived:
        performer = record.user
        for user, previous in add(record):
            for i in range(bisect_right(starts, previous), count):
                feeds[i](user, performer)
    absorbed = len(arrived)
    for checkpoint in checkpoints:
        checkpoint.note_processed(absorbed)
