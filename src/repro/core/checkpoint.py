"""Influential checkpoint: one append-only oracle over an action suffix.

A checkpoint ``Λ_t[i]`` (Section 4.1) maintains an ε-approximate SIM
solution for the contiguous actions ``{W_t[i], ..., W_t[N]}`` — i.e. for the
suffix of the stream starting at the checkpoint's *start time*.  It bundles

* an :class:`~repro.core.influence_index.AppendOnlyInfluenceIndex` holding
  ``I_t[i](u)`` for every user observed in the suffix, and
* a :class:`~repro.core.oracles.base.CheckpointOracle` fed through the SSM
  steps: the index reports which users' influence sets grew, and the oracle
  re-processes exactly those users.

Checkpoints never see expiries: deletion of whole checkpoints is the IC/SIC
frameworks' job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet

from repro.core.diffusion import ActionRecord
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles.base import CheckpointOracle, make_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["Checkpoint", "OracleSpec"]


@dataclass(frozen=True)
class OracleSpec:
    """Recipe for building one checkpoint oracle.

    Attributes:
        name: Registered oracle name (``"sieve"``, ``"threshold"``, ...).
        k: Cardinality constraint of the SIM query.
        func: The influence function ``f``.
        params: Extra keyword arguments (e.g. ``{"beta": 0.2}`` for the
            threshold-guessing oracles).
    """

    name: str
    k: int
    func: InfluenceFunction
    params: dict = field(default_factory=dict)

    def build(self, index: AppendOnlyInfluenceIndex) -> CheckpointOracle:
        """Instantiate the oracle against a fresh checkpoint index."""
        return make_oracle(
            self.name, k=self.k, func=self.func, index=index, **self.params
        )


class Checkpoint:
    """``Λ_t[i]``: oracle + append-only influence index for one suffix."""

    __slots__ = ("start", "_index", "_oracle", "_actions_processed")

    def __init__(self, start: int, spec: OracleSpec):
        """
        Args:
            start: Timestamp of the first action this checkpoint covers.
            spec: Oracle recipe shared by all checkpoints of a framework.
        """
        if start <= 0:
            raise ValueError(f"checkpoint start must be positive, got {start}")
        self.start = start
        self._index = AppendOnlyInfluenceIndex()
        self._oracle = spec.build(self._index)
        self._actions_processed = 0

    def process(self, record: ActionRecord) -> None:
        """SSM steps (1)–(3) for one arriving action."""
        if record.time < self.start:
            raise ValueError(
                f"checkpoint starting at {self.start} received "
                f"older action {record.time}"
            )
        self._actions_processed += 1
        for user in self._index.add(record):
            self._oracle.process(user, record.user)

    @property
    def value(self) -> float:
        """The checkpoint's influence value Λ (monotone non-decreasing)."""
        return self._oracle.value

    @property
    def seeds(self) -> FrozenSet[int]:
        """The maintained seed users."""
        return self._oracle.seeds

    @property
    def oracle(self) -> CheckpointOracle:
        """The underlying oracle (for introspection/ablation)."""
        return self._oracle

    @property
    def index(self) -> AppendOnlyInfluenceIndex:
        """The suffix influence index ``I_t[i](·)``."""
        return self._index

    @property
    def actions_processed(self) -> int:
        """How many actions this checkpoint has absorbed."""
        return self._actions_processed

    def position(self, now: int, window_size: int) -> int:
        """The paper's relative index ``x_i`` within ``W_now``.

        ``1`` means the checkpoint covers the whole window; ``<= 0`` means it
        has expired (covers more actions than the window holds).
        """
        return self.start - (now - window_size)

    def covers_window(self, now: int, window_size: int) -> bool:
        """True while the checkpoint covers at most the window's actions."""
        return self.position(now, window_size) >= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpoint(start={self.start}, value={self.value:.1f}, "
            f"seeds={sorted(self.seeds)})"
        )
