"""The resolve half of the two-phase ingest API.

The paper's per-action work splits cleanly in two:

* **resolve** — walk the diffusion forest once per arriving action and
  emit its ``(influencer, member, time)`` influence tuples (an
  :class:`~repro.core.diffusion.ActionRecord`).  This is stream-global,
  transactional work: it needs the full response-chain history and must
  happen exactly once per action.
* **apply** — feed the influence index and the checkpoint oracles from
  those pre-resolved tuples.  This is per-influencer work: a shard that
  owns a subset of influencers only needs the records (narrowed to its
  influencers) plus the slide's global boundaries.

:class:`ResolvedSlide` is the value passed between the two phases: one
window slide's worth of resolved records plus the global slide
boundaries (``start``/``last``/``count``) the apply side needs even when
its projected record list is empty — a sharded checkpoint still opens at
the slide's *global* start, and its absorption ledger still counts the
*global* ``L``, so broadcast and routed ingest stay bit-identical.

:class:`SlideResolver` is the standalone resolver the sharded facade
runs: a diffusion forest plus a stream clock, with idempotent
re-resolution of redelivered actions (at-least-once delivery after a
crash re-sends actions the resolver has already seen; those reuse the
stored record instead of corrupting the forest).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.diffusion import ActionRecord, DiffusionForest

__all__ = [
    "RESOLVED_WIRE_VERSION",
    "ResolvedSlide",
    "SlideResolver",
    "project_records",
    "partition_slide",
]

#: Version tag of the :meth:`ResolvedSlide.to_wire` encoding (shared by
#: the shard IPC payloads and the routed WAL records).
RESOLVED_WIRE_VERSION = 1


def project_records(
    records: Sequence[ActionRecord], owns: Callable[[int], bool]
) -> List[ActionRecord]:
    """Narrow resolved records to the influence pairs a shard owns.

    Each record's ``influencers`` tuple is filtered through ``owns``;
    records left with no owned influencer are dropped entirely.  Records
    whose influencers are all owned pass through unchanged (no copy), so
    projection is idempotent: projecting an already-projected record
    list is a no-op.
    """
    projected: List[ActionRecord] = []
    for record in records:
        owned = tuple(u for u in record.influencers if owns(u))
        if not owned:
            continue
        if len(owned) == len(record.influencers):
            projected.append(record)
        else:
            projected.append(
                ActionRecord(
                    time=record.time,
                    user=record.user,
                    influencers=owned,
                    depth=record.depth,
                )
            )
    return projected


class ResolvedSlide:
    """One window slide's forest-resolved influence records.

    Attributes:
        start: Timestamp of the slide's first action — *stream-global*,
            preserved across projection so every shard opens checkpoints
            at the same boundary the single engine would.
        last: Timestamp of the slide's last action (the stream clock
            after this slide).
        count: Number of actions in the slide (the paper's ``L``),
            stream-global and preserved across projection — the
            checkpoint absorption ledger counts global actions.
        records: The resolved :class:`ActionRecord` tuples.  Equal to
            one record per action for an unprojected slide; a projected
            slide keeps only the records with owned influencers.
        routed: True when this slide was narrowed per shard by
            :func:`partition_slide` — a promise that every influencer in
            ``records`` is owned by the receiving shard, letting sharded
            engines skip the defensive re-projection on the hot apply
            path.  The promise holds inside a
            :class:`~repro.sharding.engine.ShardedEngine`, whose manifest
            pins the partitioner identity; direct callers constructing
            routed slides for a mismatched partitioner would double-count
            influence pairs.
    """

    __slots__ = ("start", "last", "count", "records", "routed")

    def __init__(
        self,
        start: int,
        last: int,
        count: int,
        records: Tuple[ActionRecord, ...],
        routed: bool = False,
    ):
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count and last < start:
            raise ValueError(
                f"slide boundaries out of order: start {start} > last {last}"
            )
        self.start = start
        self.last = last
        self.count = count
        self.records = tuple(records)
        self.routed = bool(routed)

    @classmethod
    def empty(cls) -> "ResolvedSlide":
        """The zero-action slide (applying it is a no-op)."""
        return cls(start=0, last=0, count=0, records=())

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResolvedSlide):
            return NotImplemented
        return (
            self.start == other.start
            and self.last == other.last
            and self.count == other.count
            and self.records == other.records
            and self.routed == other.routed
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResolvedSlide(start={self.start}, last={self.last}, "
            f"count={self.count}, records={len(self.records)})"
        )

    def project(self, owns: Callable[[int], bool]) -> "ResolvedSlide":
        """This slide narrowed to the influence pairs ``owns`` accepts.

        The global boundaries (``start``/``last``/``count``) are kept:
        they describe the slide, not the projection.
        """
        return ResolvedSlide(
            start=self.start,
            last=self.last,
            count=self.count,
            records=tuple(project_records(self.records, owns)),
        )

    def slice_after(self, after_time: int) -> "ResolvedSlide":
        """The sub-slide strictly beyond ``after_time``.

        Used for catch-up redelivery: a healed shard whose clock sits
        inside this slide must only apply the suffix it has not covered.
        Only meaningful on an *unprojected* slide (one record per
        action), where the suffix's global ``count`` equals its record
        count.
        """
        if after_time < self.start:
            return self
        records = tuple(r for r in self.records if r.time > after_time)
        if not records:
            return ResolvedSlide.empty()
        return ResolvedSlide(
            start=records[0].time,
            last=self.last,
            count=len(records),
            records=records,
            routed=self.routed,
        )

    # -- wire codec --------------------------------------------------------

    def to_wire(self) -> dict:
        """JSON-safe encoding shared by shard IPC and routed WAL records."""
        document = {
            "v": RESOLVED_WIRE_VERSION,
            "start": self.start,
            "last": self.last,
            "count": self.count,
            "records": [
                [r.time, r.user, list(r.influencers), r.depth]
                for r in self.records
            ],
        }
        if self.routed:
            document["routed"] = True
        return document

    @classmethod
    def from_wire(cls, document: dict) -> "ResolvedSlide":
        """Decode :meth:`to_wire` output.

        Raises:
            ValueError: on an unknown wire version or malformed document.
        """
        version = document.get("v")
        if version != RESOLVED_WIRE_VERSION:
            raise ValueError(
                f"unsupported resolved-slide wire version {version!r}; "
                f"this build reads version {RESOLVED_WIRE_VERSION}"
            )
        return cls(
            start=document["start"],
            last=document["last"],
            count=document["count"],
            records=tuple(
                ActionRecord(
                    time=time,
                    user=user,
                    influencers=tuple(influencers),
                    depth=depth,
                )
                for time, user, influencers, depth in document["records"]
            ),
            routed=document.get("routed", False),
        )


def partition_slide(resolved: ResolvedSlide, partitioner) -> List[ResolvedSlide]:
    """Split one unprojected slide into per-shard projected slides.

    One pass over every influence pair: each record's influencers are
    grouped by owning shard, and each shard receives the record narrowed
    to its influencers (the whole record, uncopied, when it owns them
    all) — exactly what :func:`project_records` would produce per shard,
    at a single-pass cost instead of one full scan per shard.

    Every per-shard slide keeps the global ``start``/``last``/``count``
    and is marked ``routed``: the receiving shard may trust the narrowing
    and skip its defensive re-projection.
    """
    shards = partitioner.shards
    shard_of = partitioner.shard_of
    parts: List[List[ActionRecord]] = [[] for _ in range(shards)]
    for record in resolved.records:
        influencers = record.influencers
        by_shard: dict = {}
        for user in influencers:
            by_shard.setdefault(shard_of(user), []).append(user)
        for shard, owned in by_shard.items():
            if len(owned) == len(influencers):
                parts[shard].append(record)
            else:
                parts[shard].append(
                    ActionRecord(
                        time=record.time,
                        user=record.user,
                        influencers=tuple(owned),
                        depth=record.depth,
                    )
                )
    return [
        ResolvedSlide(
            start=resolved.start,
            last=resolved.last,
            count=resolved.count,
            records=tuple(part),
            routed=True,
        )
        for part in parts
    ]


class SlideResolver:
    """A standalone resolve-phase engine: diffusion forest + stream clock.

    The sharded facade owns one of these and runs it exactly once per
    slide; shards then apply the routed records without ever seeing a
    raw action.  Redelivered actions (at-least-once delivery after a
    crash) are re-resolved *idempotently*: an action at or below the
    resolver clock reuses its stored forest record instead of being
    re-added, so replaying a stream suffix through the resolver yields
    the same records the original pass produced.
    """

    def __init__(self, retention: Optional[int] = None):
        self._forest = DiffusionForest(retention=retention)
        self._last_time = 0
        self._actions_processed = 0

    @property
    def now(self) -> int:
        """Timestamp of the newest action ever resolved (0 before any)."""
        return self._last_time

    @property
    def actions_processed(self) -> int:
        """Distinct actions resolved (redelivered actions not recounted)."""
        return self._actions_processed

    @property
    def forest(self) -> DiffusionForest:
        """The underlying diffusion forest."""
        return self._forest

    def resolve(self, batch: Sequence[Action]) -> ResolvedSlide:
        """Resolve one slide; returns the unprojected resolved slide.

        The batch must be strictly ascending in time.  Actions at or
        below the resolver clock are redeliveries: their stored records
        are reused (or, when a retention horizon already pruned them,
        re-resolved — the chain may truncate, matching what a
        retention-bounded broadcast engine would have produced).
        """
        if not batch:
            return ResolvedSlide.empty()
        records: List[ActionRecord] = []
        previous = 0
        for action in batch:
            if action.time <= previous:
                raise ValueError(
                    f"resolver received out-of-order action {action.time} "
                    f"after {previous}"
                )
            previous = action.time
            if action.time <= self._last_time:
                try:
                    records.append(self._forest.record(action.time))
                    continue
                except KeyError:
                    # Redelivered but already pruned by retention:
                    # re-resolve (the parent may be gone too — the chain
                    # truncates exactly as the original pass would have
                    # under the same horizon).
                    records.append(self._forest.add(action))
                    continue
            records.append(self._forest.add(action))
            self._last_time = action.time
            self._actions_processed += 1
        return ResolvedSlide(
            start=batch[0].time,
            last=batch[-1].time,
            count=len(batch),
            records=tuple(records),
        )

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state (forest + clock + accounting)."""
        return {
            "forest": self._forest.to_state(),
            "last_time": self._last_time,
            "actions_processed": self._actions_processed,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SlideResolver":
        """Rebuild a resolver from :meth:`to_state` output."""
        resolver = cls()
        resolver._forest = DiffusionForest.from_state(state["forest"])
        resolver._last_time = state["last_time"]
        resolver._actions_processed = state["actions_processed"]
        return resolver
