"""SIC — the Sparse Influential Checkpoints framework (Section 5).

SIC keeps only ``O(log N / β)`` of IC's checkpoints.  After every slide it
prunes checkpoints that are well-approximated by their successors
(Algorithm 2 lines 9-20): scanning from each retained checkpoint ``x_i``,
any checkpoint ``x_j`` is deleted while **both** ``Λ[x_j]`` and
``Λ[x_{j+1}]`` are still within a ``(1−β)`` factor of ``Λ[x_i]`` — the
successor then approximates the deleted ones forever after (Lemma 2), so the
answer stays ``ε(1−β)/2``-approximate (Theorem 3), i.e. ``1/4 − β`` with
SieveStreaming (Theorem 4).

One *expired* checkpoint ``Λ_t[x_0]`` — covering slightly more than the
window — is retained (lines 21-23) so the optimum of the full window remains
upper-bounded; it is discarded once its successor expires too.  The query
answer is the oldest non-expired checkpoint ``Λ_t[x_1]`` (line 25).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.checkpoint import Checkpoint, OracleSpec
from repro.core.diffusion import ActionRecord
from repro.influence.functions import CardinalityInfluence, InfluenceFunction

__all__ = ["SparseInfluentialCheckpoints"]


class SparseInfluentialCheckpoints(SIMAlgorithm):
    """Continuous SIM with logarithmically many checkpoints (Algorithm 2)."""

    def __init__(
        self,
        window_size: int,
        k: int,
        beta: float = 0.1,
        oracle: str = "sieve",
        func: Optional[InfluenceFunction] = None,
        retention: Optional[int] = None,
        oracle_beta: Optional[float] = None,
    ):
        """
        Args:
            window_size: The paper's ``N``.
            k: Seed-set cardinality constraint.
            beta: SIC's pruning parameter β ∈ (0, 1) — the quality/efficiency
                trade-off of Section 6.2.  Also reused as the oracle's guess
                granularity unless ``oracle_beta`` overrides it (the paper
                uses a single β for both).
            oracle: Registered checkpoint-oracle name.
            func: Influence function; defaults to cardinality.
            retention: Diffusion-forest retention horizon.
            oracle_beta: Optional separate β for the oracle's OPT guessing.
        """
        super().__init__(window_size=window_size, k=k, retention=retention)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self._beta = beta
        func = func if func is not None else CardinalityInfluence()
        guess_beta = oracle_beta if oracle_beta is not None else beta
        params = {"beta": guess_beta} if oracle in ("sieve", "threshold") else {}
        self._spec = OracleSpec(name=oracle, k=k, func=func, params=params)
        self._checkpoints: List[Checkpoint] = []
        self._pruned_total = 0

    @property
    def beta(self) -> float:
        """The pruning parameter β."""
        return self._beta

    @property
    def checkpoint_count(self) -> int:
        """Number of live checkpoints (``O(log N / β)``, Theorem 5)."""
        return len(self._checkpoints)

    @property
    def checkpoints(self) -> Sequence[Checkpoint]:
        """Live checkpoints, oldest first (read-only view)."""
        return tuple(self._checkpoints)

    @property
    def pruned_total(self) -> int:
        """Checkpoints deleted by the pruning rule since construction."""
        return self._pruned_total

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        # Lines 2-8: new checkpoint for the arriving slide, then feed all.
        self._checkpoints.append(Checkpoint(arrived[0].time, self._spec))
        for record in arrived:
            for checkpoint in self._checkpoints:
                checkpoint.process(record)
        self._prune()
        self._retire_expired_head()

    # -- Algorithm 2 lines 9-20 -------------------------------------------

    def _prune(self) -> None:
        """Delete checkpoints approximated by their successors."""
        cps = self._checkpoints
        if len(cps) <= 2:
            return
        keep: List[Checkpoint] = []
        i = 0
        while i < len(cps):
            keep.append(cps[i])
            bar = (1.0 - self._beta) * cps[i].value
            j = i + 1
            # Delete cps[j] while both it and its successor still clear the
            # (1-β) bar relative to cps[i]; the successor will answer for
            # the deleted ones (Lemma 2).  j+1 <= s keeps the newest alive.
            while j + 1 < len(cps) and cps[j].value >= bar and cps[j + 1].value >= bar:
                j += 1
            self._pruned_total += j - (i + 1)
            i = j
        self._checkpoints = keep

    # -- Algorithm 2 lines 21-23 --------------------------------------------

    def _retire_expired_head(self) -> None:
        """Keep exactly one expired checkpoint (the paper's ``Λ_t[x_0]``)."""
        now = self.now
        size = self.window_size
        cps = self._checkpoints
        while len(cps) > 1 and not cps[1].covers_window(now, size):
            cps.pop(0)

    def query(self) -> SIMResult:
        """Return the solution of ``Λ_t[x_1]`` (Algorithm 2 line 25)."""
        if not self._checkpoints:
            return SIMResult(time=self.now, seeds=frozenset(), value=0.0)
        now, size = self.now, self.window_size
        for checkpoint in self._checkpoints:
            if checkpoint.covers_window(now, size):
                return SIMResult(
                    time=now, seeds=checkpoint.seeds, value=checkpoint.value
                )
        # All checkpoints expired (cannot happen after a slide, as the newest
        # always covers the window); fall back to the newest.
        newest = self._checkpoints[-1]
        return SIMResult(time=now, seeds=newest.seeds, value=newest.value)
