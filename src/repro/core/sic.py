"""SIC — the Sparse Influential Checkpoints framework (Section 5).

SIC keeps only ``O(log N / β)`` of IC's checkpoints.  After every slide it
prunes checkpoints that are well-approximated by their successors
(Algorithm 2 lines 9-20): scanning from each retained checkpoint ``x_i``,
any checkpoint ``x_j`` is deleted while **both** ``Λ[x_j]`` and
``Λ[x_{j+1}]`` are still within a ``(1−β)`` factor of ``Λ[x_i]`` — the
successor then approximates the deleted ones forever after (Lemma 2), so the
answer stays ``ε(1−β)/2``-approximate (Theorem 3), i.e. ``1/4 − β`` with
SieveStreaming (Theorem 4).

One *expired* checkpoint ``Λ_t[x_0]`` — covering slightly more than the
window — is retained (lines 21-23) so the optimum of the full window remains
upper-bounded; it is discarded once its successor expires too.  The query
answer is the oldest non-expired checkpoint ``Λ_t[x_1]`` (line 25).

**Shared-index data plane.**  Like IC, SIC by default keeps one
:class:`~repro.core.influence_index.VersionedInfluenceIndex` for all its
checkpoints instead of one append-only copy each: an arriving action is
indexed once in O(d), and a ``bisect`` over the retained checkpoints'
starts dispatches oracle feeds to exactly those whose suffix set gained a
new member (the pair's previous credit time tells which).  A slide's
updates are merged into per-checkpoint ``(user, new_members)`` deltas and
delivered as one oracle batch per checkpoint
(:func:`~repro.core.checkpoint.feed_shared`; ``batch_feeds=False`` keeps
the per-delta reference delivery).  Combined with the logarithmic
checkpoint population this makes SIC's per-action cost O(d + feeds) with
index memory equal to the distinct visible pairs — pruned checkpoints cost
nothing because views hold no per-checkpoint state.
``shared_index=False`` restores the reference per-checkpoint indexes
proven equivalent by the property tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.base import (
    STATE_FORMAT_VERSION,
    SIMAlgorithm,
    SIMResult,
    check_state_header,
)
from repro.core.checkpoint import (
    Checkpoint,
    CheckpointRoster,
    OracleSpec,
    feed_shared,
    make_columnar_kernel,
    project_records,
)
from repro.core.diffusion import ActionRecord
from repro.core.influence_index import VersionedInfluenceIndex
from repro.influence.functions import (
    CardinalityInfluence,
    InfluenceFunction,
    function_from_state,
)

__all__ = ["SparseInfluentialCheckpoints"]


class SparseInfluentialCheckpoints(SIMAlgorithm):
    """Continuous SIM with logarithmically many checkpoints (Algorithm 2)."""

    def __init__(
        self,
        window_size: int,
        k: int,
        beta: float = 0.1,
        oracle: str = "sieve",
        func: Optional[InfluenceFunction] = None,
        retention: Optional[int] = None,
        oracle_beta: Optional[float] = None,
        shared_index: bool = True,
        batch_feeds: bool = True,
        shard=None,
        columnar: Optional[bool] = None,
    ):
        """
        Args:
            window_size: The paper's ``N`` (must be >= 1).
            k: Seed-set cardinality constraint (must be >= 1).
            beta: SIC's pruning parameter β ∈ (0, 1) — the quality/efficiency
                trade-off of Section 6.2.  Also reused as the oracle's guess
                granularity unless ``oracle_beta`` overrides it (the paper
                uses a single β for both).
            oracle: Registered checkpoint-oracle name.
            func: Influence function; defaults to cardinality.
            retention: Diffusion-forest retention horizon.
            oracle_beta: Optional separate β for the oracle's OPT guessing.
            shared_index: Share one versioned influence index across all
                checkpoints (the fast data plane).  ``False`` restores the
                per-checkpoint reference indexes.
            batch_feeds: Deliver each checkpoint's slide as one merged
                oracle batch (shared-index mode only).  ``False`` feeds the
                same per-user deltas one call at a time — result-identical,
                kept as the batched path's equivalence reference.
            shard: Optional
                :class:`~repro.sharding.partition.ShardAssignment`.  The
                engine still consumes the full stream (ancestor chains stay
                exact) but indexes and offers to its oracles only the
                influence pairs whose influencer the assignment owns — one
                shard of the partitioned ingest plane
                (:mod:`repro.sharding`).
            columnar: Oracle-plane selection — see
                :class:`~repro.core.ic.InfluentialCheckpoints`.  ``None``
                auto-enables the vectorized columnar kernel when supported,
                ``True`` requires it, ``False`` keeps the object-oracle
                equivalence reference.
        """
        # window_size and k are validated (with the offending value in the
        # message) by SIMAlgorithm/SlidingWindow in super().__init__;
        # tests/core/test_sic.py pins that contract.
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        super().__init__(window_size=window_size, k=k, retention=retention)
        self._beta = beta
        func = func if func is not None else CardinalityInfluence()
        guess_beta = oracle_beta if oracle_beta is not None else beta
        params = {"beta": guess_beta} if oracle in ("sieve", "threshold") else {}
        self._spec = OracleSpec(name=oracle, k=k, func=func, params=params)
        self._roster = CheckpointRoster()
        self._batch_feeds = batch_feeds
        self._pruned_total = 0
        self._shard = shard
        self._shared: Optional[VersionedInfluenceIndex] = (
            VersionedInfluenceIndex() if shared_index else None
        )
        self._columnar_requested = columnar
        self._kernel = make_columnar_kernel(
            self._spec, self._shared, columnar, batch_feeds
        )

    @property
    def beta(self) -> float:
        """The pruning parameter β."""
        return self._beta

    @property
    def checkpoint_count(self) -> int:
        """Number of live checkpoints (``O(log N / β)``, Theorem 5)."""
        return len(self._roster)

    @property
    def checkpoints(self) -> Sequence[Checkpoint]:
        """Live checkpoints, oldest first (read-only view)."""
        return tuple(self._roster.checkpoints)

    @property
    def pruned_total(self) -> int:
        """Checkpoints deleted by the pruning rule since construction."""
        return self._pruned_total

    @property
    def shared_index(self) -> Optional[VersionedInfluenceIndex]:
        """The shared versioned index (``None`` in reference mode)."""
        return self._shared

    @property
    def shard(self):
        """This engine's shard assignment (``None`` when unsharded)."""
        return self._shard

    @property
    def columnar(self) -> bool:
        """Whether the columnar oracle kernel is active."""
        return self._kernel is not None

    @property
    def columnar_kernel(self):
        """The active ``ColumnarThresholdKernel`` (``None`` = object plane)."""
        return self._kernel

    @property
    def influence_function(self) -> InfluenceFunction:
        """The influence function ``f`` the checkpoint oracles maximise."""
        return self._spec.func

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        records = (
            arrived
            if self._shard is None
            else project_records(arrived, self._shard.owns)
        )
        self._absorb_slide(
            records, start=arrived[0].time, absorbed=len(arrived)
        )

    def _on_slide_resolved(self, resolved) -> None:
        # The routed apply path: see InfluentialCheckpoints; checkpoints
        # open at the slide's global start and the ledger counts the
        # global L, so routed ≡ broadcast holds per slide.  ``routed``
        # slides were already narrowed at the facade — skip the per-pair
        # defensive re-projection.
        records = (
            list(resolved.records)
            if self._shard is None or resolved.routed
            else project_records(resolved.records, self._shard.owns)
        )
        self._absorb_slide(
            records, start=resolved.start, absorbed=resolved.count
        )

    def _absorb_slide(self, records, start: int, absorbed: int) -> None:
        """Absorb one slide's (possibly projected) records into the roster.

        Lines 2-8: new checkpoint for the arriving slide, then feed all.
        ``start``/``absorbed`` are the slide's global first timestamp and
        action count (see :class:`~repro.core.resolve.ResolvedSlide`).
        """
        roster = self._roster
        shared = self._shared
        kernel = self._kernel
        if kernel is not None:
            roster.append(kernel.new_checkpoint(start, roster))
            kernel.absorb_slide(roster, records, absorbed=absorbed)
        elif shared is not None:
            roster.append(
                Checkpoint(
                    start, self._spec, index=shared.view(start), ledger=roster
                )
            )
            feed_shared(
                shared,
                roster,
                records,
                batch=self._batch_feeds,
                absorbed=absorbed,
            )
        else:
            roster.append(Checkpoint(start, self._spec))
            if len(records) == 1:
                record = records[0]
                for checkpoint in roster.checkpoints:
                    checkpoint.process(record)
            elif records:
                for checkpoint in roster.checkpoints:
                    checkpoint.process_slide(records)
        self._prune()
        self._retire_expired_head()
        if shared is not None and roster:
            shared.compact(roster[0].start, now=self.now)

    # -- Algorithm 2 lines 9-20 -------------------------------------------

    def _prune(self) -> None:
        """Delete checkpoints approximated by their successors."""
        cps = self._roster.checkpoints
        if len(cps) <= 2:
            return
        keep: List[Checkpoint] = []
        i = 0
        while i < len(cps):
            keep.append(cps[i])
            bar = (1.0 - self._beta) * cps[i].value
            j = i + 1
            # Delete cps[j] while both it and its successor still clear the
            # (1-β) bar relative to cps[i]; the successor will answer for
            # the deleted ones (Lemma 2).  j+1 <= s keeps the newest alive.
            while j + 1 < len(cps) and cps[j].value >= bar and cps[j + 1].value >= bar:
                j += 1
            self._pruned_total += j - (i + 1)
            if self._kernel is not None:
                for removed in cps[i + 1 : j]:
                    self._kernel.retire_checkpoint(removed)
            i = j
        if len(keep) < len(cps):
            self._roster.replace(keep)

    # -- Algorithm 2 lines 21-23 --------------------------------------------

    def _retire_expired_head(self) -> None:
        """Keep exactly one expired checkpoint (the paper's ``Λ_t[x_0]``)."""
        now = self.now
        size = self.window_size
        roster = self._roster
        while len(roster) > 1 and not roster[1].covers_window(now, size):
            popped = roster.pop_oldest()
            if self._kernel is not None:
                self._kernel.retire_checkpoint(popped)

    def query(self) -> SIMResult:
        """Return the solution of ``Λ_t[x_1]`` (Algorithm 2 line 25)."""
        if not self._roster:
            return SIMResult(time=self.now, seeds=frozenset(), value=0.0)
        now, size = self.now, self.window_size
        for checkpoint in self._roster.checkpoints:
            if checkpoint.covers_window(now, size):
                return SIMResult(
                    time=now, seeds=checkpoint.seeds, value=checkpoint.value
                )
        # All checkpoints expired (cannot happen after a slide, as the newest
        # always covers the window); fall back to the newest.
        newest = self._roster.checkpoints[-1]
        return SIMResult(time=now, seeds=newest.seeds, value=newest.value)

    def query_candidates(self):
        """Per-seed coverage of the answering checkpoint (seed-merge hook).

        Returns ``[(user, coverage_frozenset), ...]`` for the answering
        checkpoint ``Λ_t[x_1]``'s seeds (the same checkpoint
        :meth:`query` reads), coverage taken from its suffix index.  The
        suffix covers at most the window, so a sharded merge built from
        these sets never overestimates the window value.
        """
        if not self._roster:
            return []
        now, size = self.now, self.window_size
        answering = None
        for checkpoint in self._roster.checkpoints:
            if checkpoint.covers_window(now, size):
                answering = checkpoint
                break
        if answering is None:
            answering = self._roster.checkpoints[-1]
        index = answering.index
        return [
            (user, frozenset(index.influence_set(user)))
            for user in sorted(answering.seeds)
        ]

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state of the whole framework (no pickle).

        Same layout as
        :meth:`~repro.core.ic.InfluentialCheckpoints.to_state`, with SIC's
        pruning parameter and counter instead of IC's checkpoint interval.
        """
        spec = self._spec
        return {
            "format": STATE_FORMAT_VERSION,
            "algorithm": "sic",
            "config": {
                "window_size": self.window_size,
                "k": self._k,
                "beta": self._beta,
                "oracle": spec.name,
                "oracle_params": dict(spec.params),
                "func": spec.func.to_state(),
                "retention": self._forest._retention,
                "shared_index": self._shared is not None,
                "batch_feeds": self._batch_feeds,
                "shard": self._shard.to_state() if self._shard is not None else None,
            },
            "base": self._base_state(),
            "pruned_total": self._pruned_total,
            # Runtime plane choice, deliberately outside config (snapshots
            # from either plane stay config-compatible).
            "columnar": self._columnar_requested,
            "shared": self._shared.to_state() if self._shared is not None else None,
            "roster": self._roster.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SparseInfluentialCheckpoints":
        """Rebuild a framework from :meth:`to_state` output."""
        check_state_header(state, "sic")
        config = state["config"]
        func = function_from_state(config["func"])
        params = config["oracle_params"]
        shard = None
        if config.get("shard") is not None:
            # Lazy import: core never depends on the sharding plane unless
            # a sharded state document actually needs it.
            from repro.sharding.partition import assignment_from_state

            shard = assignment_from_state(config["shard"])
        algorithm = cls(
            window_size=config["window_size"],
            k=config["k"],
            beta=config["beta"],
            oracle=config["oracle"],
            func=func,
            retention=config["retention"],
            oracle_beta=params.get("beta"),
            shared_index=config["shared_index"],
            batch_feeds=config["batch_feeds"],
            shard=shard,
            columnar=False,
        )
        algorithm._spec = OracleSpec(
            name=config["oracle"], k=config["k"], func=func, params=dict(params)
        )
        algorithm._restore_base(state["base"])
        algorithm._pruned_total = state["pruned_total"]
        if algorithm._shared is not None:
            algorithm._shared = VersionedInfluenceIndex.from_state(state["shared"])
        # Re-run plane selection against the restored spec and index; older
        # documents without the key auto-select (old snapshots open into
        # the columnar kernel).
        algorithm._columnar_requested = state.get("columnar")
        algorithm._kernel = make_columnar_kernel(
            algorithm._spec,
            algorithm._shared,
            algorithm._columnar_requested,
            config["batch_feeds"],
        )
        algorithm._roster = CheckpointRoster.from_state(
            state["roster"],
            algorithm._spec,
            shared=algorithm._shared,
            kernel=algorithm._kernel,
        )
        return algorithm
