"""Shared bookkeeping for the swap-based oracles (Blog-Watch, MkC).

Both maintain at most ``k`` seeds with reference-counted coverage.  One
subtlety of the SSM event model: when a slide updates several influence
sets at once, the checkpoint index applies *all* of the slide's updates
before the per-user ``process``/``process_delta`` calls fire.  A seed's
live influence set can therefore momentarily contain members whose coverage
event is still pending; reading live sets during a swap would corrupt the
reference counts (double counts on admission, missing counts on eviction).

The base class therefore tracks, per seed, the exact member set it has
*counted* (``_counted``).  All coverage arithmetic — gains, exclusive
contributions, post-swap values, evictions — goes through these counted
views; pending members are picked up by the ordinary
``process(user, new_member)`` calls as they arrive.  Counted views converge
to the live sets at the end of every SSM event.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.oracles.base import CheckpointOracle
from repro.influence.functions import InfluenceFunction

__all__ = ["SwapOracleBase"]


class SwapOracleBase(CheckpointOracle):
    """Reference-counted ≤k seed set with exact swap arithmetic."""

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index,
    ):
        super().__init__(k=k, func=func, index=index)
        if not func.modular:
            raise ValueError(
                f"{type(self).__name__} supports modular influence "
                "functions only"
            )
        self._seeds: Set[int] = set()
        self._counted: Dict[int, Set[int]] = {}
        self._cover_counts: Dict[int, int] = {}
        self._value: float = 0.0

    @property
    def current_seeds(self) -> frozenset:
        """The live (pre-snapshot) candidate set."""
        return frozenset(self._seeds)

    @property
    def current_value(self) -> float:
        """The live coverage value of :attr:`current_seeds`."""
        return self._value

    def process(self, user: int, new_member: int) -> None:
        if user in self._seeds:
            counted = self._counted[user]
            if new_member not in counted:
                counted.add(new_member)
                self._cover(new_member)
        elif len(self._seeds) < self._k:
            if self._gain_if_added(user) > 0.0:
                self._add_seed(user)
        else:
            self._consider_swap(user)
        self._offer_solution(self._value, self._seeds)

    # -- coverage bookkeeping ---------------------------------------------

    def _cover(self, member: int) -> None:
        """One more seed now covers ``member``."""
        count = self._cover_counts.get(member, 0)
        self._cover_counts[member] = count + 1
        if count == 0:
            self._value += self._func.weight(member)

    def _uncover(self, member: int) -> None:
        """One fewer seed covers ``member``."""
        count = self._cover_counts[member] - 1
        if count:
            self._cover_counts[member] = count
        else:
            del self._cover_counts[member]
            self._value -= self._func.weight(member)

    def _gain_if_added(self, user: int) -> float:
        """Marginal coverage gain of adding ``user`` now."""
        counts = self._cover_counts
        weight = self._func.weight
        return sum(
            weight(v)
            for v in self._index.influence_set(user)
            if counts.get(v, 0) == 0
        )

    def _add_seed(self, user: int) -> None:
        members = set(self._index.influence_set(user))
        self._seeds.add(user)
        self._counted[user] = members
        for v in members:
            self._cover(v)

    def _remove_seed(self, user: int) -> None:
        self._seeds.remove(user)
        for v in self._counted.pop(user):
            self._uncover(v)

    def _exclusive_contribution(self, seed: int) -> float:
        """Value lost if ``seed`` were evicted right now."""
        counts = self._cover_counts
        weight = self._func.weight
        return sum(
            weight(v) for v in self._counted[seed] if counts.get(v, 0) == 1
        )

    def _post_swap_value(self, evicted: int, user: int) -> float:
        """Value of ``S − evicted + user`` without mutating state."""
        counts = self._cover_counts
        weight = self._func.weight
        evicted_members = self._counted[evicted]
        lost = sum(weight(v) for v in evicted_members if counts.get(v, 0) == 1)
        gained = 0.0
        for v in self._index.influence_set(user):
            count = counts.get(v, 0)
            if count == 0 or (count == 1 and v in evicted_members):
                gained += weight(v)
        return self._value - lost + gained

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Dynamic state: live seeds, counted views, and reference counts."""
        state = super().state_dict()
        state.update(
            {
                "seeds": sorted(self._seeds),
                "value": self._value,
                "counted": [
                    [u, sorted(members)] for u, members in self._counted.items()
                ],
                "cover_counts": [
                    [v, count] for v, count in self._cover_counts.items()
                ],
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        """Restore dynamic state captured by :meth:`state_dict`."""
        super().load_state(state)
        self._seeds = set(state["seeds"])
        self._value = state["value"]
        self._counted = {u: set(members) for u, members in state["counted"]}
        self._cover_counts = {v: count for v, count in state["cover_counts"]}

    # -- to implement --------------------------------------------------------

    def _consider_swap(self, user: int) -> None:
        """Decide whether ``user`` replaces a current seed."""
        raise NotImplementedError
