"""Online Maximum k-Coverage swap oracle (Ausiello et al., DAM 2012).

The fourth oracle of Table 2: a swap-based algorithm with the same 1/4
ratio as Blog-Watch but an ``O(k log k)`` update that *sorts seeds by
exclusive contribution* and evicts the cheapest seed whose replacement
clears a relative-improvement bar:

    f(S − Y_min + u) ≥ (1 + 1/(2k)) · f(S)

where ``Y_min`` is the seed with the smallest exclusive contribution.
Compared with Blog-Watch (which searches all ``k`` eviction candidates for
the best absolute improvement), MkC trades a weaker local search for a
cheaper, more predictable update — the difference shows up in the Table 2
ablation benchmark.  Modular influence functions only.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.oracles.base import register_oracle
from repro.core.oracles.swap_base import SwapOracleBase

__all__ = ["MkCOracle"]


@register_oracle("mkc")
class MkCOracle(SwapOracleBase):
    """Cheapest-eviction swap oracle: 1/4-approximate, O(k log k)."""

    ratio_description = "1/4"

    def _consider_swap(self, user: int) -> None:
        """Evict the least-contributing seed when the relative bar clears."""
        ranked: List[Tuple[float, int]] = sorted(
            (self._exclusive_contribution(seed), seed) for seed in self._seeds
        )
        _cheapest_loss, cheapest_seed = ranked[0]
        new_value = self._post_swap_value(cheapest_seed, user)
        if new_value >= (1.0 + 1.0 / (2.0 * self._k)) * self._value:
            self._remove_seed(cheapest_seed)
            self._add_seed(user)
