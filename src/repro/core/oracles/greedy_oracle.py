"""Greedy checkpoint oracle: the best-possible ε = 1 − 1/e, at a price.

Not part of the paper's Table 2 — the paper's greedy baseline recomputes
over the *window*, which needs expiry handling — but a natural fourth
column for small-scale studies: running the classic greedy over a
checkpoint's append-only suffix gives the optimal achievable approximation
ratio for SIM (Theorem 2 then transfers `1 − 1/e` to IC, and Theorem 3
gives `(1 − 1/e)(1 − β)/2` for SIC).

To keep updates affordable the oracle re-runs CELF greedy only when the
accumulated *potential* gain since the last run exceeds a refresh factor
(default: any growth at all for exactness; raise ``refresh_factor`` to
amortise).  The reported value is the monotone best-so-far snapshot like
every other oracle.
"""

from __future__ import annotations

from typing import Set

from repro.core.oracles.base import CheckpointOracle, register_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["GreedyOracle"]


@register_oracle("greedy")
class GreedyOracle(CheckpointOracle):
    """(1 − 1/e)-approximate oracle via periodic CELF re-computation."""

    ratio_description = "1 - 1/e"

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index,
        refresh_factor: float = 1.05,
    ):
        """
        Args:
            k: Cardinality constraint.
            func: Monotone submodular influence function.
            index: The checkpoint's append-only influence index.
            refresh_factor: Re-run greedy when the sum of singleton values
                has grown by this factor since the last run (1.0 = every
                update; the default 1.05 amortises to ~log-many runs).
        """
        super().__init__(k=k, func=func, index=index)
        if refresh_factor < 1.0:
            raise ValueError(
                f"refresh factor must be >= 1.0, got {refresh_factor}"
            )
        self._refresh_factor = refresh_factor
        self._candidates: Set[int] = set()
        self._mass = 0.0  # sum of singleton weights seen since creation
        self._mass_at_refresh = 0.0

    @property
    def candidate_count(self) -> int:
        """Users currently eligible for selection."""
        return len(self._candidates)

    def process(self, user: int, new_member: int) -> None:
        self._candidates.add(user)
        if self._func.modular:
            self._mass += self._func.weight(new_member)
        else:
            self._mass += 1.0
        if self._mass >= self._refresh_factor * max(self._mass_at_refresh, 1e-12):
            self._refresh()

    def _refresh(self) -> None:
        from repro.core.greedy import greedy_seed_selection

        seeds, value = greedy_seed_selection(
            self._index, self._candidates, self._k, self._func, lazy=True
        )
        self._mass_at_refresh = self._mass
        self._offer_solution(value, seeds)

    def state_dict(self) -> dict:
        """Dynamic state: candidate pool and the refresh accumulator."""
        state = super().state_dict()
        state.update(
            {
                "candidates": sorted(self._candidates),
                "mass": self._mass,
                "mass_at_refresh": self._mass_at_refresh,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        """Restore dynamic state captured by :meth:`state_dict`."""
        super().load_state(state)
        self._candidates = set(state["candidates"])
        self._mass = state["mass"]
        self._mass_at_refresh = state["mass_at_refresh"]
