"""Checkpoint oracles: append-only SSO algorithms behind the SSM interface.

Importing this package registers the four oracles of the paper's Table 2:

========================  ==================  ============  ============
name                      class               ratio         functions
========================  ==================  ============  ============
``sieve``                 SieveStreaming      ``1/2 − β``   general
``threshold``             ThresholdStream     ``1/2 − β``   general
``blog_watch``            Blog-Watch          ``1/4``       modular
``mkc``                   online Max-k-Cover  ``1/4``       modular
========================  ==================  ============  ============

plus one extra oracle beyond the paper's table, for small-scale studies:
``greedy`` (periodic CELF re-computation, ``1 − 1/e``, general functions).

Use :func:`~repro.core.oracles.base.make_oracle` to instantiate by name.
"""

from repro.core.oracles.base import (
    CheckpointOracle,
    make_oracle,
    oracle_names,
    register_oracle,
)
from repro.core.oracles.blog_watch import BlogWatchOracle
from repro.core.oracles.greedy_oracle import GreedyOracle
from repro.core.oracles.mkc import MkCOracle
from repro.core.oracles.sieve import SieveStreamingOracle
from repro.core.oracles.streaming_base import StreamingThresholdOracle
from repro.core.oracles.threshold import ThresholdStreamOracle

__all__ = [
    "CheckpointOracle",
    "make_oracle",
    "oracle_names",
    "register_oracle",
    "StreamingThresholdOracle",
    "SieveStreamingOracle",
    "ThresholdStreamOracle",
    "BlogWatchOracle",
    "MkCOracle",
    "GreedyOracle",
]
