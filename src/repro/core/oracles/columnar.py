"""Columnar oracle kernel: one vectorized pass per slide for all checkpoints.

The object plane maintains one
:class:`~repro.core.oracles.streaming_base.StreamingThresholdOracle` per
checkpoint and replays every slide ⌈N/L⌉ times — once per oracle — even
though the per-checkpoint work is almost identical: the same user gained
the same members, only the suffix boundary differs.  At ``L = 1`` that
per-object fan-out dominates the whole engine (see ``BENCH_core_ops.json``).

This module turns the checkpoint population sideways.  *All* threshold-
oracle state — not just the scalars — is stored as numpy arrays indexed by
checkpoint column:

* per-column scalars: ``m`` (running max singleton), ``best`` (monotone
  best-so-far), ``floor`` (admission floor, ``+inf`` = no open instance),
  ``blow``/``bhigh`` (live guess-exponent bounds), ``start``;
* a 2-D **instance plane** ``(column, slot)`` where slot ``s`` holds the
  instance with guess exponent ``blow + s``: ``value``, ``guess``,
  ``bar`` (the admission bar, ``+inf`` for filled or absent instances, so
  the bar array doubles as the admission gate), ``seed count``;
* per-``(column, slot)`` **coverage bitsets**: each influenced user is
  assigned a bit lane on first sight, and an instance's covered set is a
  row of uint64 words — set membership, set difference and gain counting
  become ``&``/``|``/popcount;
* transposed per-user state: singleton caches (``user ->
  float64[column]``) and seed membership (``user -> uint64[column]``, bit
  ``s`` set iff the user seeds slot ``s`` — the per-oracle
  ``_member_counts`` as popcounts).

Checkpoints are column *ranges*: columns are appended in ascending start
order, so the checkpoints a pair update feeds — those whose start exceeds
the pair's previous credit time — form a contiguous suffix ``[lo, n)``
located with one ``bisect``.  A slide then needs, per updated user, one
vectorized singleton/cache pass (``cache[lo:n] += gains``; ``m``/``best``
compares) and one vectorized **admission pass** over every gated
``(column, instance)`` pair at once:

1. the user's suffix membership per column is one gather from a
   cumulative-OR table of their (time-sorted) influence pairs;
2. the members an admission would gain are ``suffix & ~covered`` per
   instance; the gain is ``uniform * popcount`` — for *member* instances
   the same expression is the refresh growth, because a seed's covered set
   always contains their older suffix;
3. admissions are ``gain >= bar`` compares; values, covered words, bars
   (sieve recomputes, fills go to ``+inf``) and floors update as masked
   array writes; the best-so-far offer is the row max (first-occurrence
   ``argmax`` reproduces the object plane's sequential strict-``>`` fold).

Bookkeeping that the object plane keeps in Python containers lives in
flat arrays here: per-instance seed lists are rows of an
``(columns, slots, k)`` id array (user ids interned to dense rows),
membership bits sit in a ``(users, columns)`` ``uint64`` matrix, and the
best-so-far seed set is a ``(columns, k)`` id array — so the whole
per-event update is array writes with no Python-object churn, and a
compiled kernel can own the same state.  Seed lists serialize sorted and
``best_seeds`` in admission order; both are set-semantics surfaces
(queries expose frozensets), so equivalence is up to entry order, like
the cache/member maps.  The kernel is *behaviourally identical* to the
object plane (proven by ``tests/core/test_columnar_equivalence.py``) —
not an approximation.

**Deferred admission-floor tightening.**  The kernel maintains each
column's floor with one-sided min-updates during the slide and re-tightens
dirty columns once at slide end (:meth:`ColumnarThresholdKernel.absorb_slide`),
exactly like the object plane's lazy ``process_batch`` mode.  Soundness is
the same argument: a too-low floor only lets more users *reach* the
per-instance bar test, which is exact; it can never admit a user the tight
floor would have rejected.  At slide end the recomputed floor equals the
object plane's (which re-tightens after each admission or at batch end),
so serialized states agree.  The in-slide min-update folds the whole bar
row — unchanged bars are always ``>=`` the current floor, so including
them cannot drag the min below the object plane's changed-bars-only fold.

**Expiry and pruning** (:meth:`ColumnarThresholdKernel.retire_checkpoint`)
are column bookkeeping: the column is masked dead (``m/best/floor`` set to
sentinels no vector compare can fire on, membership bits cleared) and
physically reclaimed by an amortised compaction once dead columns
outnumber live ones.

Checkpoint state is serialized per column in the *exact*
``StreamingThresholdOracle.state_dict`` schema (coverage bitsets decode
back to sorted member lists), so snapshots are plane-portable in both
directions: object-plane snapshots open into columnar engines and vice
versa, with no format bump.

Supported scope: modular influence functions with **uniform** member
weights and a
:class:`~repro.core.oracles.streaming_base.StreamingThresholdOracle`
subclass (``sieve``/``threshold``) over a shared
:class:`~repro.core.influence_index.VersionedInfluenceIndex`.  Non-uniform
weights stay on the object plane: their admission gains are float sums in
per-object set-iteration order, which bitset popcounts cannot reproduce
bit-for-bit.  Plane selection lives in
:func:`repro.core.checkpoint.make_columnar_kernel`.
"""

from __future__ import annotations

import ctypes
import math
from bisect import bisect_right
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.core.oracles import _ckernel
from repro.core.oracles.streaming_base import (
    _EPS,
    StreamingThresholdOracle,
    ThresholdInstance,
)
from repro.telemetry.trace import active_trace

__all__ = [
    "ColumnarThresholdKernel",
    "ColumnarCheckpoint",
    "restore_checkpoint",
]

_UONE = np.uint64(1)
_UZERO = np.uint64(0)


def _stock_bar_mode(probe) -> Optional[int]:
    """The compiled kernel's bar mode for ``probe``'s oracle class, or
    ``None`` when the class customizes the bar rule (the C kernel
    hard-codes the stock sieve/threshold formulas; anything else stays on
    the numpy event path, which calls the real ``_instance_bar``)."""
    from repro.core.oracles.sieve import SieveStreamingOracle
    from repro.core.oracles.threshold import ThresholdStreamOracle

    cls = type(probe)
    if (
        cls._instance_bar is SieveStreamingOracle._instance_bar
        and cls.bar_tracks_value
    ):
        return 1
    if (
        cls._instance_bar is ThresholdStreamOracle._instance_bar
        and not cls.bar_tracks_value
    ):
        return 0
    return None


class ColumnarThresholdKernel:
    """Array-backed state of every live checkpoint's threshold oracle."""

    #: Compact once at least this many columns are dead *and* the dead
    #: outnumber the live — amortised O(1) column work per retire.
    _MIN_COMPACT_DEAD = 32

    def __init__(self, spec, shared):
        """
        Args:
            spec: The framework's :class:`~repro.core.checkpoint.OracleSpec`
                (must name a :class:`StreamingThresholdOracle` subclass and
                carry a modular, uniform-weight influence function).
            shared: The framework's
                :class:`~repro.core.influence_index.VersionedInfluenceIndex`.
        """
        func = spec.func
        if not func.modular:
            raise ValueError(
                "the columnar kernel supports modular influence functions "
                f"only; got {type(func).__name__}"
            )
        if func.uniform_weight is None:
            raise ValueError(
                "the columnar kernel supports uniform member weights only "
                "(admission gains are bitset popcounts); "
                f"{type(func).__name__} weights members individually"
            )
        # A probe oracle supplies the admission-bar rule and its flags, so
        # any registered StreamingThresholdOracle subclass works unchanged.
        probe = spec.build(shared.view(1))
        if not isinstance(probe, StreamingThresholdOracle):
            raise TypeError(
                "the columnar kernel requires a StreamingThresholdOracle "
                f"subclass; oracle {spec.name!r} builds "
                f"{type(probe).__name__}"
            )
        self._spec = spec
        self._shared = shared
        self._k = spec.k
        self._uniform = func.uniform_weight
        self._bar = probe._instance_bar
        self._bar_tracks_value = type(probe).bar_tracks_value
        self._beta = probe._beta
        self._base = 1.0 + self._beta
        self._log_base = probe._log_base
        # Instance-plane width: the guess ladder m <= (1+β)^j <= 2km spans
        # at most log(2k)/log(1+β) + O(1) exponents regardless of m, so a
        # fixed per-column slot budget holds every live instance; slot s of
        # a column is the instance with exponent blow + s.  Membership
        # masks pack one bit per slot into a uint64.
        self._jcap = int(math.log(2 * self._k) / self._log_base) + 3
        if self._jcap > 64:
            raise ValueError(
                f"beta={self._beta} is too small for the columnar kernel: "
                f"the guess ladder spans up to {self._jcap} live instances "
                "per checkpoint, past the 64-bit membership masks"
            )
        #: Scratch instance for evaluating the empty-instance bar exactly
        #: through the oracle's own ``_instance_bar`` (never mutated apart
        #: from ``guess``).
        self._dummy = ThresholdInstance(guess=1.0)
        self._jbits = np.arange(self._jcap, dtype=np.int64)

        # Telemetry plane counters (scraped via :meth:`stats`).
        self.slides_absorbed = 0
        self.pair_updates = 0

        cap = 64
        self._cap = cap
        self._n = 0
        self._dead = 0
        # Global per-checkpoint columns (physical layout; may contain dead
        # columns until the next compaction).
        self._m = np.zeros(cap)
        self._best = np.zeros(cap)
        self._floor = np.full(cap, math.inf)
        # Smallest m that could move a column's instance bounds; m growths
        # below it provably leave {low, high} unchanged, so the scalar
        # refresh call is skipped entirely (0 = always refresh).
        self._rthresh = np.zeros(cap)
        self._blow = np.zeros(cap, dtype=np.int64)
        self._bhigh = np.full(cap, -1, dtype=np.int64)
        self._alive = np.zeros(cap, dtype=bool)
        self._starts_arr = np.zeros(cap, dtype=np.int64)
        # The instance plane (column, slot).
        jcap = self._jcap
        kcap = self._k
        self._ival = np.zeros((cap, jcap))
        self._ibar = np.full((cap, jcap), math.inf)
        self._iguess = np.zeros((cap, jcap))
        self._inseed = np.zeros((cap, jcap), dtype=np.int16)
        # Seed identities, flat: slot (col, s) seeds are the first
        # ``inseed[col, s]`` entries of ``_iseed_ids[col, s]``, stored as
        # user *rows* (see ``_urow``) in admission order.
        self._iseed_ids = np.zeros((cap, jcap, kcap), dtype=np.int64)
        # Best-so-far solution seeds per column, same encoding.
        self._best_ids = np.zeros((cap, kcap), dtype=np.int64)
        self._best_ns = np.zeros(cap, dtype=np.int64)
        # Coverage bitsets (column, slot, word); the word axis grows with
        # the influenced-user lane count.
        self._wcap = 1
        self._w = 0
        self._icov = np.zeros((cap, jcap, 1), dtype=np.uint64)
        self._lane_of: Dict[int, int] = {}
        self._lane_user: List[int] = []
        # Python-side per-column state, aligned with the arrays.
        self._starts_list: List[int] = []
        self._views: List[object] = []
        self._handles: List[Optional["ColumnarCheckpoint"]] = []
        # Transposed per-user state, one row per interned user (``_urow``):
        # singleton caches as float rows, seed membership as uint64 rows
        # (bit ``j & 63`` set iff the user seeds the instance with guess
        # exponent ``j`` — unambiguous because a column's live exponent
        # span is < 64).
        self._uidx: Dict[int, int] = {}
        self._uidx_user: List[int] = []
        self._urows_cap = 64
        self._mem2d = np.zeros((self._urows_cap, cap), dtype=np.uint64)
        self._cache2d = np.zeros((self._urows_cap, cap))
        # Columns whose floor needs re-tightening at slide end.
        self._dirtyf = np.zeros(cap, dtype=np.uint8)
        # Compiled event path: only for the stock sieve/threshold bar
        # rules (the C code hard-codes their formulas) and only when the
        # shared library builds/loads; otherwise _process_user runs the
        # pure-numpy path below with identical results.
        self._cfast = None
        self._cbar_mode = _stock_bar_mode(probe)
        if self._cbar_mode is not None:
            self._cfast = _ckernel.load()
        self._cctx = None
        self._cstale = True
        self._sc_pairs = 64

    # -- column lifecycle --------------------------------------------------

    @property
    def live_count(self) -> int:
        """Number of live (non-retired) columns."""
        return self._n - self._dead

    def new_checkpoint(self, start: int, ledger) -> "ColumnarCheckpoint":
        """Append a column for a checkpoint opening at ``start``."""
        if self._starts_list and start <= self._starts_list[-1]:
            raise ValueError(
                f"columns must be appended in ascending start order; got "
                f"{start} after {self._starts_list[-1]}"
            )
        if self._n == self._cap:
            self._grow(self._cap * 2)
        col = self._n
        self._n += 1
        self._m[col] = 0.0
        self._best[col] = 0.0
        self._floor[col] = math.inf
        self._rthresh[col] = 0.0
        self._blow[col] = 0
        self._bhigh[col] = -1
        self._alive[col] = True
        self._starts_arr[col] = start
        # The row may hold a reclaimed column's remains — reset it.
        self._ival[col] = 0.0
        self._ibar[col] = math.inf
        self._iguess[col] = 0.0
        self._inseed[col] = 0
        self._icov[col] = _UZERO
        self._best_ns[col] = 0
        self._dirtyf[col] = 0
        self._starts_list.append(start)
        self._views.append(self._shared.view(start))
        handle = ColumnarCheckpoint(self, col, start, ledger)
        self._handles.append(handle)
        return handle

    def retire_checkpoint(self, checkpoint: "ColumnarCheckpoint") -> None:
        """Mask a checkpoint's column dead (expiry or SIC pruning)."""
        col = checkpoint._col
        if not self._alive[col]:
            return
        self._alive[col] = False
        # Sentinels no vector compare can fire on: singletons are finite,
        # so ``seg > inf`` and ``seg >= inf`` are always False.
        self._m[col] = math.inf
        self._best[col] = math.inf
        self._floor[col] = math.inf
        self._rthresh[col] = math.inf
        self._mem2d[:, col] = _UZERO
        self._ival[col] = 0.0
        self._ibar[col] = math.inf
        self._iguess[col] = 0.0
        self._inseed[col] = 0
        self._icov[col] = _UZERO
        self._best_ns[col] = 0
        self._views[col] = None
        self._handles[col] = None
        self._dirtyf[col] = 0
        self._dead += 1
        if self._dead >= self._MIN_COMPACT_DEAD and self._dead * 2 >= self._n:
            self._compact()

    def _grow(self, new_cap: int) -> None:
        n = self._n
        jcap = self._jcap

        def grown(arr, fill):
            out = np.full(new_cap, fill, dtype=arr.dtype)
            out[:n] = arr[:n]
            return out

        def grown2(arr, fill):
            out = np.full((new_cap, jcap), fill, dtype=arr.dtype)
            out[:n] = arr[:n]
            return out

        self._m = grown(self._m, 0.0)
        self._best = grown(self._best, 0.0)
        self._floor = grown(self._floor, math.inf)
        self._rthresh = grown(self._rthresh, 0.0)
        self._blow = grown(self._blow, 0)
        self._bhigh = grown(self._bhigh, -1)
        self._alive = grown(self._alive, False)
        self._starts_arr = grown(self._starts_arr, 0)
        self._ival = grown2(self._ival, 0.0)
        self._ibar = grown2(self._ibar, math.inf)
        self._iguess = grown2(self._iguess, 0.0)
        self._inseed = grown2(self._inseed, 0)
        kcap = self._k
        ids = np.zeros((new_cap, jcap, kcap), dtype=np.int64)
        ids[:n] = self._iseed_ids[:n]
        self._iseed_ids = ids
        bids = np.zeros((new_cap, kcap), dtype=np.int64)
        bids[:n] = self._best_ids[:n]
        self._best_ids = bids
        self._best_ns = grown(self._best_ns, 0)
        self._dirtyf = grown(self._dirtyf, 0)
        icov = np.zeros((new_cap, jcap, self._wcap), dtype=np.uint64)
        icov[:n] = self._icov[:n]
        self._icov = icov
        mem = np.zeros((self._urows_cap, new_cap), dtype=np.uint64)
        mem[:, :n] = self._mem2d[:, :n]
        self._mem2d = mem
        cch = np.zeros((self._urows_cap, new_cap))
        cch[:, :n] = self._cache2d[:, :n]
        self._cache2d = cch
        self._cap = new_cap
        self._cstale = True

    def _grow_words(self, new_wcap: int) -> None:
        icov = np.zeros((self._cap, self._jcap, new_wcap), dtype=np.uint64)
        icov[:, :, : self._wcap] = self._icov
        self._icov = icov
        self._wcap = new_wcap
        self._cstale = True

    def _lane(self, v: int) -> int:
        """The coverage bit lane of influenced user ``v`` (assigning one
        on first sight; the word axis doubles as lanes fill it)."""
        lane = self._lane_of.get(v)
        if lane is None:
            lane = len(self._lane_user)
            self._lane_of[v] = lane
            self._lane_user.append(v)
            w = (lane >> 6) + 1
            if w > self._wcap:
                self._grow_words(max(self._wcap * 2, w))
            self._w = w
        return lane

    def _urow(self, u: int) -> int:
        """The membership/seed-identity row of user ``u`` (assigned on
        first sight; the row axis of ``_mem2d`` doubles as users fill it)."""
        row = self._uidx.get(u)
        if row is None:
            row = len(self._uidx_user)
            self._uidx[u] = row
            self._uidx_user.append(u)
            if row >= self._urows_cap:
                new_rows = self._urows_cap * 2
                mem = np.zeros((new_rows, self._cap), dtype=np.uint64)
                mem[: self._urows_cap] = self._mem2d
                self._mem2d = mem
                cch = np.zeros((new_rows, self._cap))
                cch[: self._urows_cap] = self._cache2d
                self._cache2d = cch
                self._urows_cap = new_rows
                self._cstale = True
        return row

    # -- compiled event path -------------------------------------------------

    def _ensure_scratch(self, count: int, nlos: int) -> None:
        """Size the C call's scratch arrays and refresh the context struct
        after any array reallocation (growth marks ``_cstale``)."""
        need = max(count, nlos)
        if need > self._sc_pairs:
            while self._sc_pairs < need:
                self._sc_pairs *= 2
            self._cstale = True
        if self._cstale:
            self._refill_ctx()

    def _refill_ctx(self) -> None:
        pairs = self._sc_pairs
        self._sc_lanes = np.zeros(pairs, dtype=np.int64)
        self._sc_times = np.zeros(pairs, dtype=np.int64)
        self._sc_skeys = np.zeros(2 * pairs, dtype=np.int64)
        self._sc_cum = np.zeros((pairs + 1) * self._wcap, dtype=np.uint64)
        self._sc_los = np.zeros(pairs, dtype=np.int64)
        self._sc_counts = np.zeros(self._cap, dtype=np.int64)
        self._sc_fresh = np.zeros(self._wcap, dtype=np.uint64)
        ctx = _ckernel.EventCtx()
        ctx.cap = self._cap
        ctx.jcap = self._jcap
        ctx.kcap = self._k
        ctx.wcap = self._wcap
        ctx.k = self._k
        ctx.bar_mode = self._cbar_mode
        ctx.uniform = self._uniform
        ctx.base = self._base
        ctx.log_base = self._log_base
        ctx.m = self._m.ctypes.data
        ctx.best = self._best.ctypes.data
        ctx.floor_ = self._floor.ctypes.data
        ctx.rthresh = self._rthresh.ctypes.data
        ctx.blow = self._blow.ctypes.data
        ctx.bhigh = self._bhigh.ctypes.data
        ctx.starts = self._starts_arr.ctypes.data
        ctx.ival = self._ival.ctypes.data
        ctx.ibar = self._ibar.ctypes.data
        ctx.iguess = self._iguess.ctypes.data
        ctx.inseed = self._inseed.ctypes.data
        ctx.iseed_ids = self._iseed_ids.ctypes.data
        ctx.best_ids = self._best_ids.ctypes.data
        ctx.best_ns = self._best_ns.ctypes.data
        ctx.dirtyf = self._dirtyf.ctypes.data
        ctx.icov = self._icov.ctypes.data
        ctx.mem2d = self._mem2d.ctypes.data
        ctx.cache2d = self._cache2d.ctypes.data
        ctx.lanes = self._sc_lanes.ctypes.data
        ctx.times = self._sc_times.ctypes.data
        ctx.skeys = self._sc_skeys.ctypes.data
        ctx.cum = self._sc_cum.ctypes.data
        ctx.counts = self._sc_counts.ctypes.data
        ctx.los = self._sc_los.ctypes.data
        ctx.freshb = self._sc_fresh.ctypes.data
        self._cctx = ctx
        self._cstale = False

    def _process_user_c(self, u: int, pairs, a: int, b: int) -> None:
        """One user's merged slide event through the compiled kernel.

        Python's share of the event: intern this slide's performers and
        the user into their lanes/rows, copy the user's influence pairs
        (hot map + live cold arrays) into the scratch columns, and make
        one C call that runs the whole numpy event path natively.
        """
        lane = self._lane
        lane_of = self._lane_of
        for _lo, p in pairs:
            if p not in lane_of:
                lane(p)
        shared = self._shared
        hot = shared._latest.get(u)
        if hot:
            try:
                lanes = [lane_of[v] for v in hot]
            except KeyError:
                # Pairs restored from a snapshot may hold users this
                # kernel has never laned — intern them all.
                lanes = [lane(v) for v in hot]
            times = list(hot.values())
        else:
            lanes = []
            times = []
        cold = shared._cold
        if cold:
            entry = cold.get(u)
            if entry is not None and entry[2] < len(entry[0]):
                for v, t in zip(entry[0].tolist(), entry[1].tolist()):
                    if v >= 0:  # skip resurrection tombstones
                        lanes.append(lane(v))
                        times.append(t)
        count = len(lanes)
        urow = self._urow(u)
        nlos = len(pairs)
        self._ensure_scratch(count, nlos)
        self._sc_lanes[:count] = lanes
        self._sc_times[:count] = times
        if nlos > 1:
            self._sc_los[:nlos] = [lo for lo, _p in pairs]
        status = self._cfast.process_event(
            ctypes.byref(self._cctx), urow, a, b, nlos, count, self._w
        )
        if status:  # pragma: no cover - guarded by _jcap sizing
            raise RuntimeError(
                "columnar C kernel: guess ladder outgrew the slot budget"
            )

    def _compact(self) -> None:
        """Physically drop dead columns (handles are re-pointed in place)."""
        old_n = self._n
        keep = np.flatnonzero(self._alive[:old_n])
        n_new = int(keep.size)
        for arr in (
            self._m,
            self._best,
            self._floor,
            self._rthresh,
            self._blow,
            self._bhigh,
            self._starts_arr,
            self._best_ns,
            self._dirtyf,
        ):
            arr[:n_new] = arr[keep]
        for arr in (
            self._ival,
            self._ibar,
            self._iguess,
            self._inseed,
            self._iseed_ids,
            self._best_ids,
        ):
            arr[:n_new] = arr[keep]
        self._icov[:n_new] = self._icov[keep]
        self._mem2d[:, :n_new] = self._mem2d[:, keep]
        self._mem2d[:, n_new:old_n] = _UZERO
        self._alive[:n_new] = True
        self._alive[n_new:old_n] = False
        keep_list = keep.tolist()
        self._starts_list = [self._starts_list[c] for c in keep_list]
        self._views = [self._views[c] for c in keep_list]
        self._handles = [self._handles[c] for c in keep_list]
        for col, handle in enumerate(self._handles):
            handle._col = col
        self._cache2d[:, :n_new] = self._cache2d[:, keep]
        self._cache2d[:, n_new:old_n] = 0.0
        self._n = n_new
        self._dead = 0

    # -- the per-slide kernel ----------------------------------------------

    def absorb_slide(self, roster, arrived, absorbed: int = -1) -> None:
        """Index ``arrived`` once and run the columnar passes for the slide.

        The columnar twin of :func:`repro.core.checkpoint.feed_shared`:
        one shared-index update per record, one vectorized pass per updated
        user, and one floor re-tightening sweep over the columns that
        admitted this slide.
        """
        if absorbed < 0:
            absorbed = len(arrived)
        if not len(roster):
            return
        if arrived:
            trace = active_trace()
            index_started = perf_counter() if trace is not None else 0.0
            if len(arrived) == 1:
                record = arrived[0]
                performer = record.user
                updates = [
                    (performer, u, previous)
                    for u, previous in self._shared.add(record)
                ]
            else:
                updates = self._shared.add_batch(arrived)
            if trace is not None:
                indexed = perf_counter()
                trace.add_stage(
                    "kernel_index", indexed - index_started, len(arrived)
                )
                self._absorb(updates)
                trace.add_stage(
                    "kernel_pass", perf_counter() - indexed, len(updates)
                )
            else:
                self._absorb(updates)
            self.slides_absorbed += 1
            self.pair_updates += len(updates)
        roster.absorbed += absorbed

    def _absorb(self, updates) -> None:
        n = self._n
        if not n or not updates:
            return
        starts = self._starts_list
        first_start = starts[0]
        # Group the slide's pair updates per user, tracking the prefix-min
        # chain of feed boundaries.  The object plane positions a user in a
        # checkpoint's delta map at the user's first update feeding that
        # checkpoint; a user whose later pair reaches *older* checkpoints
        # therefore appears at different positions in different maps, and
        # the chain tells exactly which column ranges belong to which
        # position (see the ordering note in ``_process_user``).
        per_user: Dict[int, list] = {}
        segmented = False
        for q, (performer, u, previous) in enumerate(updates):
            lo = (
                0
                if previous < first_start
                else bisect_right(starts, previous)
            )
            if lo >= n:
                continue
            entry = per_user.get(u)
            if entry is None:
                per_user[u] = [[(lo, performer)], [(q, lo)]]
            else:
                pairs, mins = entry
                pairs.append((lo, performer))
                if lo < mins[-1][1]:
                    mins.append((q, lo))
                    segmented = True
        if per_user:
            if not segmented:
                # Common case: every user's columns form one suffix range,
                # and dict order == global first-update order == every
                # column's local first-update order.
                for u, (pairs, mins) in per_user.items():
                    self._process_user(u, pairs, mins[0][1], n)
            else:
                # A user reached older columns with a later pair: emit one
                # event per (user, column range) at the position of the
                # first update feeding that range, and replay events in
                # global position order — this reproduces each column's
                # per-user delivery order exactly.
                events = []
                for u, (pairs, mins) in per_user.items():
                    hi = n
                    for q, lo in mins:
                        events.append((q, u, lo, hi))
                        hi = lo
                events.sort()
                for _q, u, lo, hi in events:
                    self._process_user(u, per_user[u][0], lo, hi)
        dirty = np.flatnonzero(self._dirtyf[:n])
        if dirty.size:
            # Retired columns reset their flag, so every flagged column is
            # alive and its floor re-tightens to the row minimum.
            self._floor[dirty] = self._ibar[dirty].min(axis=1)
            self._dirtyf[dirty] = 0

    def _process_user(self, u: int, pairs, a: int, b: int) -> None:
        """One user's merged slide event over columns ``[a, b)``.

        Vectorized singleton/cache update, ``m`` refresh, best-so-far
        offer, and admission gating; gated columns continue into the
        vectorized per-instance admission pass.  ``pairs`` is the user's
        full slide — ``(feed_boundary, performer)`` in slide order —
        matching the object plane's merged ``(user, new_members)`` delta.
        """
        if self._cfast is not None:
            self._process_user_c(u, pairs, a, b)
            return
        urow = self._urow(u)
        seg = self._cache2d[urow, a:b]
        uniform = self._uniform
        if len(pairs) == 1:
            seg += uniform
        else:
            # gains[c] = uniform * #{pairs feeding column c}: one multiply
            # and one add per column, bit-identical to the object plane's
            # ``cache[u] + uniform * len(new_members)``.
            counts = np.zeros(b - a, dtype=np.int64)
            for lo, _performer in pairs:
                if lo < b:  # pairs of later segments reach no column here
                    counts[lo - a if lo > a else 0] += 1
            np.cumsum(counts, out=counts)
            seg += counts * uniform
        # (1) m refresh — per grown column, the exact instance-range rebuild.
        mseg = self._m[a:b]
        grew = seg > mseg
        if grew.any():
            idxs = np.nonzero(grew)[0]
            grown_m = seg[idxs]
            mseg[idxs] = grown_m
            # Only m growths that can move a bound pay the scalar-log
            # refresh; the threshold is conservative, so sub-threshold
            # growths provably leave the instance range untouched.
            need = grown_m >= self._rthresh[a:b][idxs]
            if need.any():
                refresh = self._refresh_instances
                for i in idxs[need].tolist():
                    refresh(a + i)
        # (2) best-so-far singleton offer (strict >, like _offer_solution).
        bseg = self._best[a:b]
        better = seg > bseg
        if better.any():
            idxs = np.nonzero(better)[0]
            bseg[idxs] = seg[idxs]
            cols = idxs + a
            self._best_ns[cols] = 1
            self._best_ids[cols, 0] = urow
        # (3) admission gate: member columns always continue; non-member
        # columns only when the singleton clears the floor (sound for
        # modular f — the gain is bounded by the singleton value).  Dead
        # columns never pass: their floor is +inf and their membership
        # bits were cleared on retirement.
        gate = seg >= self._floor[a:b]
        mem = self._mem2d[urow]
        gate |= mem[a:b] != _UZERO
        if gate.any():
            rows = np.flatnonzero(gate) + a
            self._admit_pass(u, urow, rows, seg[gate], mem)

    def _admit_pass(self, u: int, uidx: int, rows, sing, mem) -> None:
        """The vectorized twin of the object plane's ``_dispatch`` walk.

        ``rows`` are the gated columns, ``sing`` the user's singleton value
        per gated column, ``mem`` the user's membership-mask row.  All
        gated ``(column, slot)`` pairs are tested at once:

        * candidate slots: ``singleton >= bar`` and not already seeded by
          the user (filled/absent slots carry ``bar = +inf``);
        * the members gained = ``suffix & ~covered`` — for member slots
          this same expression is the refresh growth, since a seed's
          covered set contains their older suffix (every new suffix member
          is a performer delivered while the user was already a seed);
        * admissions require ``gain >= bar`` and ``gain > 0`` — the exact
          object-plane test, with the gain computed by the identical
          ``uniform * count`` multiply.
        """
        jcap = self._jcap
        blows = self._blow[rows]
        # Clip the slot axis to the widest gated column — bars beyond a
        # column's width are +inf, so the clip never drops a candidate.
        jmax = int((self._bhigh[rows] - blows).max()) + 1
        if jmax <= 0:
            return
        if jmax > jcap:  # pragma: no cover - guarded by _refresh_instances
            jmax = jcap
        bars = self._ibar[rows][:, :jmax]
        cand = sing[:, None] >= bars
        # Membership bits are keyed by guess exponent mod 64 (the live
        # exponent span is < 64 wide, so bits are unambiguous and never
        # need shifting when the range slides).
        membits = mem[rows]
        shifts = ((blows[:, None] + self._jbits[:jmax]) & 63).astype(
            np.uint64
        )
        memm = (membits[:, None] >> shifts) & _UONE != _UZERO
        inter = cand | memm
        # From here on the pass is entry-wise: only the (column, slot)
        # pairs that are admission candidates or existing memberships are
        # gathered and tested — typically a handful per event.
        er, es = np.nonzero(inter)
        if not er.size:
            return
        masks = self._suffix_masks(u, rows)
        if masks is None:
            return
        ecols = rows[er]
        cov = self._icov[ecols, es]
        fresh = masks[er] & ~cov
        if self._wcap == 1:
            cnt = np.bitwise_count(fresh[:, 0]).astype(np.int64)
        else:
            cnt = np.bitwise_count(fresh).sum(axis=1, dtype=np.int64)
        gains = cnt * self._uniform
        ebars = bars[er, es]
        e_mem = memm[er, es]
        eadmit = ~e_mem & (gains >= ebars) & (gains > 0.0)
        eapply = eadmit | (e_mem & (cnt > 0))
        ai = np.flatnonzero(eapply)
        if not ai.size:
            return
        acols = ecols[ai]
        asl = es[ai]
        # Value growth and coverage absorption, applied entries only.
        # Entries are distinct (column, slot) pairs, so the fancy in-place
        # updates are race-free.
        self._ival[acols, asl] += gains[ai]
        self._icov[acols, asl] |= fresh[ai]
        k = self._k
        adm = np.flatnonzero(eadmit)
        if adm.size:
            ids = self._iseed_ids
            blist = blows.tolist()
            fills = self._inseed[ecols[adm], es[adm]].tolist()
            for r, col, s, fill in zip(
                er[adm].tolist(), ecols[adm].tolist(), es[adm].tolist(), fills
            ):
                ids[col, s, fill] = uidx
                mem[col] |= _UONE << np.uint64((blist[r] + s) & 63)
            self._inseed[ecols[adm], es[adm]] += 1
        # Bars: sieve bars track value (refresh + admission recompute);
        # threshold bars are static and only fill to +inf on the k-th seed.
        ci = ai if self._bar_tracks_value else adm
        if ci.size:
            ccols = ecols[ci]
            csl = es[ci]
            nsc = self._inseed[ccols, csl].astype(np.int64)
            filled = nsc >= k
            newbars = np.full(ci.size, math.inf)
            if self._bar_tracks_value:
                uf = ~filled
                if uf.any():
                    newbars[uf] = (
                        self._iguess[ccols[uf], csl[uf]] / 2.0
                        - self._ival[ccols[uf], csl[uf]]
                    ) / (k - nsc[uf])
                self._ibar[ccols, csl] = newbars
                # The object plane min-updates the floor with each changed
                # bar as it walks; raises are healed by the slide-end dirty
                # recompute.
                np.minimum.at(self._floor, ccols, newbars)
                if adm.size:
                    self._dirtyf[ecols[adm]] = 1
            else:
                if filled.any():
                    self._ibar[ccols[filled], csl[filled]] = math.inf
                    self._dirtyf[ccols[filled]] = 1
        # Best-so-far offers: the object plane folds strict-> offers in
        # ascending slot order within each column, and only slots that just
        # grew can improve the fold (an unchanged value was already
        # offered).  Replaying the applied entries in row-major order is
        # exactly that fold.
        avals = self._ival[acols, asl].tolist()
        best = self._best
        best_ids = self._best_ids
        best_ns = self._best_ns
        ids = self._iseed_ids
        nseed = self._inseed
        for col, s, v in zip(acols.tolist(), asl.tolist(), avals):
            if v > best[col]:
                best[col] = v
                nsv = int(nseed[col, s])
                best_ids[col, :nsv] = ids[col, s, :nsv]
                best_ns[col] = nsv

    def _suffix_masks(self, u: int, rows) -> Optional[np.ndarray]:
        """Per gated column, the bitset of ``u``'s suffix influence set.

        Builds the user's influence pairs (hot dict + live cold arrays) as
        a time-sorted lane sequence, cumulative-ORs it from the newest pair
        backwards, and gathers one row per column at the position of the
        column's start — ``cum[pos]`` is exactly ``{v : latest(u, v) >=
        start}`` as bits.
        """
        shared = self._shared
        lane = self._lane
        lanes: List[int] = []
        times: List[int] = []
        hot = shared._latest.get(u)
        if hot:
            for v, t in hot.items():
                lanes.append(lane(v))
                times.append(t)
        cold = shared._cold
        if cold:
            entry = cold.get(u)
            if entry is not None and entry[2] < len(entry[0]):
                for v, t in zip(entry[0].tolist(), entry[1].tolist()):
                    if v >= 0:  # skip resurrection tombstones
                        lanes.append(lane(v))
                        times.append(t)
        count = len(lanes)
        if not count:
            return None
        times_arr = np.array(times, dtype=np.int64)
        order = np.argsort(times_arr, kind="stable")
        times_sorted = times_arr[order]
        lanes_arr = np.array(lanes, dtype=np.int64)[order]
        w = self._wcap
        single = np.zeros((count, w), dtype=np.uint64)
        single[np.arange(count), lanes_arr >> 6] = np.left_shift(
            _UONE, (lanes_arr & 63).astype(np.uint64)
        )
        cum = np.zeros((count + 1, w), dtype=np.uint64)
        cum[:count] = np.bitwise_or.accumulate(single[::-1], axis=0)[::-1]
        pos = np.searchsorted(times_sorted, self._starts_arr[rows])
        return cum[pos]

    def _refresh_instances(self, col) -> None:
        """Align column ``col``'s instances with ``{j: m ≤ (1+β)^j ≤ 2km}``.

        The bounds only grow (``m`` is monotone), so the rebuild is a left
        shift of the slot axis by ``low' - low`` — tearing down the
        now-too-small exponents — plus fresh empty instances on the high
        side, walking the same ``guess *= base`` chain as the object plane
        so guesses stay bit-identical.
        """
        m = float(self._m[col])
        if m <= 0.0:
            return
        low = math.ceil(math.log(m) / self._log_base - _EPS)
        high = math.floor(
            math.log(2 * self._k * m) / self._log_base + _EPS
        )
        old_low = int(self._blow[col])
        old_high = int(self._bhigh[col])
        # Re-arm the skip threshold for the bounds just derived: the next
        # m that can bump ``low`` or ``high``, backed off a hair so float
        # error in the power never lets a bound-moving growth slip by.
        self._rthresh[col] = (
            min(
                self._base ** (low + _EPS),
                self._base ** (high + 1 - _EPS) / (2.0 * self._k),
            )
            * (1.0 - 1e-9)
        )
        if low == old_low and high == old_high:
            return
        width = high - low + 1
        assert width <= self._jcap, "guess ladder outgrew the slot budget"
        old_width = old_high - old_low + 1 if old_high >= old_low else 0
        self._blow[col] = low
        self._bhigh[col] = high
        shift = low - old_low if old_width else 0
        if shift > 0:
            # Membership bits are exponent-keyed (mod 64), so surviving
            # slots keep their bits untouched; only the torn-down slots'
            # seeds lose theirs.
            ids = self._iseed_ids
            nseed = self._inseed
            mem2d = self._mem2d
            for s in range(min(shift, old_width)):
                cnt = int(nseed[col, s])
                if cnt:
                    clear = ~(_UONE << np.uint64((old_low + s) & 63))
                    mem2d[ids[col, s, :cnt], col] &= clear
            survivors = old_width - shift
            if survivors > 0:
                src = slice(shift, old_width)
                dst = slice(0, survivors)
                self._ival[col, dst] = self._ival[col, src].copy()
                self._ibar[col, dst] = self._ibar[col, src].copy()
                self._iguess[col, dst] = self._iguess[col, src].copy()
                self._inseed[col, dst] = self._inseed[col, src].copy()
                self._icov[col, dst] = self._icov[col, src].copy()
                ids[col, dst] = ids[col, src].copy()
        survivors = max(old_width - shift, 0)
        if old_width > width:
            # Slots beyond the new width hold shifted-from leftovers.
            self._ival[col, width:old_width] = 0.0
            self._ibar[col, width:old_width] = math.inf
            self._iguess[col, width:old_width] = 0.0
            self._inseed[col, width:old_width] = 0
            self._icov[col, width:old_width] = _UZERO
        news = width - survivors
        if news > 0:
            # Walk the object plane's exact guess chain from base**low;
            # survivors keep their stored guesses, new slots take the
            # chain's values at their positions.
            base = self._base
            guess = base ** low
            guesses = []
            for s in range(width):
                if s >= survivors:
                    guesses.append(guess)
                guess *= base
            dummy = self._dummy
            bar_of = self._bar
            bars_new = []
            for g in guesses:
                dummy.guess = g
                bars_new.append(bar_of(dummy))
            fill = slice(survivors, width)
            self._iguess[col, fill] = guesses
            self._ival[col, fill] = 0.0
            self._inseed[col, fill] = 0
            self._icov[col, fill] = _UZERO
            self._ibar[col, fill] = bars_new
        self._floor[col] = self._ibar[col].min()
        self._dirtyf[col] = 0

    # -- persistence & introspection ---------------------------------------

    def col_state(self, col: int) -> dict:
        """One column in the exact ``StreamingThresholdOracle`` schema.

        Per-user entries are emitted sorted by user id — a canonical order
        (the transposed arrays have no per-column insertion order to
        preserve) that keeps serialization a fixed point under reload.
        Object-plane ``load_state`` accepts any entry order.
        """
        floor = float(self._floor[col])
        users = self._uidx_user
        cache_entries = sorted(
            [users[row], val]
            for row, val in enumerate(
                self._cache2d[: len(users), col].tolist()
            )
            if val != 0.0
        )
        member_entries = sorted(
            [users[row], count]
            for row, bits in enumerate(
                self._mem2d[: len(users), col].tolist()
            )
            if (count := bits.bit_count())
        )
        low = int(self._blow[col])
        high = int(self._bhigh[col])
        width = high - low + 1 if high >= low else 0
        lane_user = self._lane_user
        w = self._w
        instances = []
        for s in range(width):
            words = self._icov[col, s, :w] if w else ()
            covered: List[int] = []
            for wi, word in enumerate(np.asarray(words).tolist()):
                while word:
                    bit = (word & -word).bit_length() - 1
                    covered.append(lane_user[(wi << 6) + bit])
                    word &= word - 1
            covered.sort()
            cnt = int(self._inseed[col, s])
            instances.append(
                [
                    low + s,
                    {
                        "guess": float(self._iguess[col, s]),
                        "value": float(self._ival[col, s]),
                        "seeds": sorted(
                            users[i]
                            for i in self._iseed_ids[col, s, :cnt].tolist()
                        ),
                        "covered": covered,
                    },
                ]
            )
        return {
            "best_value": float(self._best[col]),
            "best_seeds": [
                users[i]
                for i in self._best_ids[
                    col, : int(self._best_ns[col])
                ].tolist()
            ],
            "m": float(self._m[col]),
            "bounds": [low, high],
            "admit_floor": None if floor == math.inf else floor,
            "singleton_cache": cache_entries,
            "member_counts": member_entries,
            "instances": instances,
        }

    def load_col_state(self, col: int, state: dict) -> None:
        """Restore one column from a ``StreamingThresholdOracle`` state dict
        (written by either plane)."""
        self._best[col] = state["best_value"]
        best = state["best_seeds"]
        self._best_ns[col] = len(best)
        for q, seed in enumerate(best):
            self._best_ids[col, q] = self._urow(seed)
        self._m[col] = state["m"]
        low, high = state["bounds"]
        self._blow[col], self._bhigh[col] = low, high
        floor = state["admit_floor"]
        self._floor[col] = math.inf if floor is None else floor
        for u, value in state["singleton_cache"]:
            # _urow may grow (replace) the row arrays — resolve it first.
            row = self._urow(u)
            self._cache2d[row, col] = value
        # Seed membership is rebuilt from the instances' seed lists (the
        # document's member_counts are exactly their per-user multiplicity).
        k = self._k
        lane = self._lane
        for j, fields in state["instances"]:
            s = j - low
            guess = fields["guess"]
            value = fields["value"]
            seeds = fields["seeds"]
            covered = fields["covered"]
            self._iguess[col, s] = guess
            self._ival[col, s] = value
            self._inseed[col, s] = len(seeds)
            for q, seed in enumerate(seeds):
                self._iseed_ids[col, s, q] = self._urow(seed)
            if len(seeds) >= k:
                self._ibar[col, s] = math.inf
            else:
                # The oracle's own bar rule over a real instance — exact.
                instance = ThresholdInstance(guess=guess)
                instance.value = value
                instance.seeds = set(seeds)
                self._ibar[col, s] = self._bar(instance)
            mask = 0
            for v in covered:
                mask |= 1 << lane(v)
            if mask:
                words = self._icov[col, s]
                wi = 0
                while mask:
                    words[wi] = mask & 0xFFFFFFFFFFFFFFFF
                    mask >>= 64
                    wi += 1
            if seeds:
                bit = _UONE << np.uint64(j & 63)
                for seed in seeds:
                    row = self._urow(seed)
                    self._mem2d[row, col] |= bit

    def materialize_oracle(self, col: int):
        """A real oracle object loaded from the column (read-only copy)."""
        oracle = self._spec.build(self._views[col])
        oracle.load_state(self.col_state(col))
        return oracle

    def stats(self) -> dict:
        """Plane/counter document for the telemetry scrape."""
        return {
            "plane": "columnar",
            "event_kernel": "c" if self._cfast is not None else "numpy",
            "slides_absorbed": self.slides_absorbed,
            "pair_updates": self.pair_updates,
            "columns": int(self._n - self._dead),
        }

    def footprint(self) -> tuple:
        """``(live instances, total covered entries)`` across live columns
        — the accounting the memory-footprint experiment reports without
        materializing per-checkpoint oracles."""
        n = self._n
        alive = self._alive[:n]
        if not alive.any():
            return 0, 0
        widths = np.maximum(self._bhigh[:n] - self._blow[:n] + 1, 0)
        instances = int(widths[alive].sum())
        covered = int(np.bitwise_count(self._icov[:n][alive]).sum())
        return instances, covered


class ColumnarCheckpoint:
    """``Λ_t[i]`` as a handle into the kernel's column ``i``.

    Presents the same read surface as
    :class:`~repro.core.checkpoint.Checkpoint` — ``start``, ``value``,
    ``seeds``, ``index``, ``oracle``, ``actions_processed``, window
    arithmetic, ``to_state`` — but owns no oracle object: all state lives
    in the kernel's columns.  ``oracle`` materializes a real
    :class:`~repro.core.oracles.streaming_base.StreamingThresholdOracle`
    from the column on demand (a read-only copy for introspection).
    """

    __slots__ = (
        "start",
        "_kernel",
        "_col",
        "_ledger",
        "_absorbed_base",
        "_actions_processed",
    )

    def __init__(self, kernel, col, start, ledger):
        if start <= 0:
            raise ValueError(f"checkpoint start must be positive, got {start}")
        self.start = start
        self._kernel = kernel
        self._col = col
        self._ledger = ledger
        self._absorbed_base = ledger.absorbed if ledger is not None else 0
        self._actions_processed = 0

    @property
    def value(self) -> float:
        """The checkpoint's influence value Λ (monotone non-decreasing)."""
        return float(self._kernel._best[self._col])

    @property
    def seeds(self) -> FrozenSet[int]:
        """The maintained seed users."""
        kern = self._kernel
        ns = int(kern._best_ns[self._col])
        users = kern._uidx_user
        return frozenset(
            users[i] for i in kern._best_ids[self._col, :ns].tolist()
        )

    @property
    def oracle(self):
        """A materialized oracle for this column (read-only snapshot)."""
        return self._kernel.materialize_oracle(self._col)

    @property
    def index(self):
        """The checkpoint's suffix view of the shared index."""
        return self._kernel._views[self._col]

    @property
    def actions_processed(self) -> int:
        """How many actions this checkpoint has absorbed (roster ledger)."""
        if self._ledger is not None:
            return (
                self._ledger.absorbed
                - self._absorbed_base
                + self._actions_processed
            )
        return self._actions_processed

    def feed(self, user: int, new_member: int) -> None:
        """Columnar checkpoints are fed through the kernel, never directly."""
        raise RuntimeError(
            "columnar checkpoints receive feeds through "
            "ColumnarThresholdKernel.absorb_slide, not Checkpoint.feed"
        )

    feed_delta = feed
    feed_batch = feed

    def position(self, now: int, window_size: int) -> int:
        """The paper's relative index ``x_i`` within ``W_now``."""
        return self.start - (now - window_size)

    def covers_window(self, now: int, window_size: int) -> bool:
        """True while the checkpoint covers at most the window's actions."""
        return self.position(now, window_size) >= 1

    def to_state(self) -> dict:
        """The same document schema as ``Checkpoint.to_state`` (shared mode)."""
        return {
            "start": self.start,
            "actions_processed": self.actions_processed,
            "oracle": self._kernel.col_state(self._col),
            "index": None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarCheckpoint(start={self.start}, value={self.value:.1f}, "
            f"seeds={sorted(self.seeds)})"
        )


def restore_checkpoint(
    kernel: ColumnarThresholdKernel, state: dict, ledger
) -> ColumnarCheckpoint:
    """Rebuild one checkpoint column from a ``Checkpoint.to_state`` document
    written by either plane (``index`` must be ``None`` — shared mode)."""
    handle = kernel.new_checkpoint(state["start"], ledger)
    kernel.load_col_state(handle._col, state["oracle"])
    handle._actions_processed = state["actions_processed"]
    if ledger is not None:
        handle._absorbed_base = ledger.absorbed
    return handle
