"""Shared machinery of the threshold-guessing streaming oracles.

SieveStreaming (:mod:`repro.core.oracles.sieve`) and ThresholdStream
(:mod:`repro.core.oracles.threshold`) are the two general-function oracles
of Table 2.  Both maintain one *instance* per geometric guess
``v_j = (1+β)^j`` of the optimum over the suffix, for ``j`` such that
``m ≤ (1+β)^j ≤ 2·k·m`` where ``m = max_u f(I_t[i](u))``, and both admit a
user to an instance when its marginal gain clears an *admission bar*.  The
only algorithmic difference is that bar:

* sieve:     ``(v_j/2 − f(I(CX_j))) / (k − |CX_j|)`` — tightens as the
  instance fills and loosens as its value grows;
* threshold: ``v_j / (2k)`` — static per instance.

Everything else — the singleton cache, the instance-range refresh, the
per-user seed-membership counts, the admission floor, the covered-set
arithmetic, and the batched slide entry point — is identical and lives in
:class:`StreamingThresholdOracle`.  Subclasses supply
:meth:`StreamingThresholdOracle._instance_bar` plus the
:attr:`StreamingThresholdOracle.bar_tracks_value` flag that tells the base
how admissions and value growth move the floor.

**Merged-delta events.**  The dispatch plane delivers one *delta*
``(user, new_members)`` per updated user per slide — all of a slide's
records are indexed before any oracle work runs, so a user's suffix set
already contains every new member when the oracle sees the delta.  The
singleton cache, the ``m``/instance-range refresh, and the best-so-far
offer therefore run once per (user, slide) instead of once per member.
Merging is not merely an optimisation but what keeps the modular singleton
prefilter sound: an admission gain is measured against the *index* (which
holds the whole slide), so a per-member singleton would lag the index and
could wrongly dismiss a user whose merged gain clears the bar.

**Admission floor.**  ``_admit_floor`` is a lower bound on every unfilled
instance's admission bar: a non-seed user whose singleton value falls below
it cannot join any instance (for modular functions the gain is bounded by
the singleton value), so the whole instance loop is skipped with two O(1)
checks.  A *too-low* floor merely skips fewer feeds — every admission is
still gated by the exact per-instance bar — so the batch path keeps the
floor sound with cheap one-sided min-updates and defers the O(instances)
re-tightening sweep to once per (checkpoint, slide) instead of once per
admission.  (Non-modular functions bypass the prefilter entirely: their
gains are measured against lazily refreshed instance values and may exceed
the singleton bound.)
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.core.oracles.base import CheckpointOracle
from repro.influence.functions import InfluenceFunction

__all__ = ["StreamingThresholdOracle", "ThresholdInstance"]

#: Tolerance guarding float rounding in ``log`` index computations.
_EPS = 1e-9


class ThresholdInstance:
    """One guess of OPT plus its candidate solution."""

    __slots__ = ("guess", "seeds", "covered", "value")

    def __init__(self, guess: float):
        self.guess = guess
        self.seeds: Set[int] = set()
        self.covered: Set[int] = set()
        self.value: float = 0.0


class StreamingThresholdOracle(CheckpointOracle):
    """Geometric-guessing SSO base: everything but the admission bar."""

    #: Whether the admission bar depends on the instance's current value
    #: (sieve).  When True, value growth and admissions can *lower* the
    #: admitting instance's bar, so the floor needs a min-update at those
    #: points; when False (threshold) only an instance filling up moves it.
    bar_tracks_value: bool = True

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index,
        beta: float = 0.1,
    ):
        super().__init__(k=k, func=func, index=index)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self._beta = beta
        self._log_base = math.log1p(beta)
        self._m: float = 0.0
        self._instances: Dict[int, ThresholdInstance] = {}
        self._singleton_cache: Dict[int, float] = {}
        # Guess-exponent range [low, high] of the live instances; refreshes
        # that leave it unchanged skip the rebuild entirely.
        self._bounds = (0, -1)
        self._modular = func.modular
        self._uniform = func.uniform_weight
        # user -> number of instances holding the user as a seed.
        self._member_counts: Dict[int, int] = {}
        # Lower bound on the admission bar over instances with free seats.
        self._admit_floor: float = math.inf
        # Batch mode: defer floor re-tightening to the end of the slide.
        self._floor_lazy = False
        self._floor_dirty = False

    # -- subclass interface ------------------------------------------------

    def _instance_bar(self, instance: ThresholdInstance) -> float:
        """The current admission bar of an *unfilled* instance."""
        raise NotImplementedError

    # -- SSM entry points --------------------------------------------------

    def process(self, user: int, new_member: int) -> None:
        """Single-member event (the L=1 hot path; no merge bookkeeping)."""
        if self._modular:
            weight = (
                self._uniform
                if self._uniform is not None
                else self._func.weight(new_member)
            )
            singleton = self._singleton_cache.get(user, 0.0) + weight
        else:
            singleton = self._func.evaluate((user,), self._index)
        self._singleton_cache[user] = singleton
        self._dispatch(user, singleton, (new_member,))

    def process_delta(self, user: int, new_members: Sequence[int]) -> None:
        """Merged event: ``user`` gained all of ``new_members`` this slide."""
        if self._modular:
            uniform = self._uniform
            if uniform is not None:
                gained = uniform * len(new_members)
            else:
                weight_of = self._func.weight
                gained = sum(weight_of(v) for v in new_members)
            singleton = self._singleton_cache.get(user, 0.0) + gained
        else:
            singleton = self._func.evaluate((user,), self._index)
        self._singleton_cache[user] = singleton
        self._dispatch(user, singleton, new_members)

    def process_batch(
        self, deltas: Iterable[Tuple[int, Sequence[int]]]
    ) -> None:
        """One (checkpoint, slide) batch of merged deltas.

        Inside the batch the admission floor is maintained by one-sided
        min-updates only (sound: a loose floor skips fewer feeds, never
        admissions); the O(instances) re-tightening sweep runs once at the
        end instead of after every admission.
        """
        self._floor_lazy = True
        try:
            process_delta = self.process_delta
            for user, members in deltas:
                process_delta(user, members)
        finally:
            self._floor_lazy = False
            if self._floor_dirty:
                self._recompute_admit_floor()

    # -- shared hot path ---------------------------------------------------

    def _dispatch(
        self, user: int, singleton: float, new_members: Sequence[int]
    ) -> None:
        """Refresh ``m``, offer the singleton, and walk the instances."""
        if singleton > self._m:
            self._m = singleton
            self._refresh_instances()
        if singleton > self._best_value:
            self._offer_solution(singleton, (user,))
        k = self._k
        # The singleton prefilters below are only sound for modular
        # functions, where the admission gain is bounded by the fed user's
        # singleton value.  In the non-modular path the gain is measured
        # against a lazily-refreshed instance value that can be stale-low,
        # so the realized gain may exceed the singleton bound — every
        # under-k instance must be offered the user.
        modular = self._modular
        if self._member_counts.get(user):
            for instance in self._instances.values():
                if user in instance.seeds:
                    self._refresh_member(instance, new_members)
                elif len(instance.seeds) < k and (
                    not modular or singleton >= self._instance_bar(instance)
                ):
                    self._try_admit(instance, user)
        elif not modular or singleton >= self._admit_floor:
            for instance in self._instances.values():
                if len(instance.seeds) < k and (
                    not modular or singleton >= self._instance_bar(instance)
                ):
                    self._try_admit(instance, user)

    def _refresh_member(
        self, instance: ThresholdInstance, new_members: Sequence[int]
    ) -> None:
        """A selected seed's influence set grew; update the instance value."""
        if self._modular:
            covered = instance.covered
            uniform = self._uniform
            grown = 0.0
            if uniform is not None:
                for v in new_members:
                    if v not in covered:
                        covered.add(v)
                        grown += uniform
            else:
                weight_of = self._func.weight
                for v in new_members:
                    if v not in covered:
                        covered.add(v)
                        grown += weight_of(v)
            if grown == 0.0:
                return
            instance.value += grown
        else:
            instance.value = self._func.evaluate(instance.seeds, self._index)
        if instance.value > self._best_value:
            self._offer_solution(instance.value, instance.seeds)
        if self.bar_tracks_value and len(instance.seeds) < self._k:
            # A value increase only ever lowers this instance's admission
            # bar, so a one-sided min-update keeps the floor valid (too low
            # merely skips fewer feeds; never too high).
            bar = self._instance_bar(instance)
            if bar < self._admit_floor:
                self._admit_floor = bar

    def _try_admit(self, instance: ThresholdInstance, user: int) -> None:
        """Apply the admission-bar test for a non-member user."""
        bar = self._instance_bar(instance)
        if self._modular:
            # One C-level set difference yields the uncovered members; with
            # a uniform weight the gain is just its size.
            fresh = self._index.fresh_members(user, instance.covered)
            if not fresh:
                return
            if self._uniform is not None:
                gain = self._uniform * len(fresh)
            else:
                weight_of = self._func.weight
                gain = sum(weight_of(v) for v in fresh)
            if gain >= bar and gain > 0.0:
                instance.seeds.add(user)
                instance.covered |= fresh
                instance.value += gain
                self._note_admission(instance, user)
        else:
            with_user = self._func.evaluate(
                list(instance.seeds) + [user], self._index
            )
            gain = with_user - instance.value
            if gain >= bar and gain > 0.0:
                instance.seeds.add(user)
                instance.value = with_user
                self._note_admission(instance, user)

    def _note_admission(self, instance: ThresholdInstance, user: int) -> None:
        """Bookkeeping after a successful admission."""
        self._member_counts[user] = self._member_counts.get(user, 0) + 1
        if instance.value > self._best_value:
            self._offer_solution(instance.value, instance.seeds)
        if self.bar_tracks_value:
            if len(instance.seeds) < self._k:
                # Keep the floor a sound lower bound even in lazy mode: the
                # admitting instance's bar may have dropped below it.
                bar = self._instance_bar(instance)
                if bar < self._admit_floor:
                    self._admit_floor = bar
            if self._floor_lazy:
                self._floor_dirty = True
            else:
                self._recompute_admit_floor()
        elif len(instance.seeds) == self._k:
            # The instance just filled up: it no longer bids for the floor.
            if self._floor_lazy:
                self._floor_dirty = True
            else:
                self._recompute_admit_floor()

    # -- instance management ----------------------------------------------

    def _recompute_admit_floor(self) -> None:
        """Re-tighten the floor to the minimum bar over unfilled instances."""
        k = self._k
        floor = math.inf
        for instance in self._instances.values():
            if len(instance.seeds) < k:
                bar = self._instance_bar(instance)
                if bar < floor:
                    floor = bar
        self._admit_floor = floor
        self._floor_dirty = False

    def _refresh_instances(self) -> None:
        """Align the instance set with ``{j : m ≤ (1+β)^j ≤ 2·k·m}``."""
        if self._m <= 0.0:
            return
        low = math.ceil(math.log(self._m) / self._log_base - _EPS)
        high = math.floor(math.log(2 * self._k * self._m) / self._log_base + _EPS)
        if (low, high) == self._bounds:
            return
        self._bounds = (low, high)
        instances = self._instances
        for j in [j for j in instances if j < low or j > high]:
            for seed in instances.pop(j).seeds:
                count = self._member_counts[seed] - 1
                if count:
                    self._member_counts[seed] = count
                else:
                    del self._member_counts[seed]
        base = 1.0 + self._beta
        guess = base ** low
        for j in range(low, high + 1):
            if j not in instances:
                instances[j] = ThresholdInstance(guess=guess)
            guess *= base
        self._recompute_admit_floor()

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Dynamic state: guesses, instances, caches, and the floor.

        Instances are serialized as an ordered ``[j, fields]`` list in the
        live dict's iteration order — order is part of the state because
        ``_dispatch`` walks instances in that order and best-so-far ties
        go to the first instance reaching a value.  Snapshots are only
        taken between slides, so the lazy-floor flags are always clear and
        are not serialized.  ``admit_floor`` uses ``None`` for +inf (JSON
        has no infinity).
        """
        state = super().state_dict()
        state.update(
            {
                "m": self._m,
                "bounds": list(self._bounds),
                "admit_floor": (
                    None if self._admit_floor == math.inf else self._admit_floor
                ),
                "singleton_cache": [
                    [u, value] for u, value in self._singleton_cache.items()
                ],
                "member_counts": [
                    [u, count] for u, count in self._member_counts.items()
                ],
                "instances": [
                    [
                        j,
                        {
                            "guess": instance.guess,
                            "value": instance.value,
                            "seeds": sorted(instance.seeds),
                            "covered": sorted(instance.covered),
                        },
                    ]
                    for j, instance in self._instances.items()
                ],
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        """Restore dynamic state captured by :meth:`state_dict`."""
        super().load_state(state)
        self._m = state["m"]
        self._bounds = tuple(state["bounds"])
        floor = state["admit_floor"]
        self._admit_floor = math.inf if floor is None else floor
        self._singleton_cache = {u: value for u, value in state["singleton_cache"]}
        self._member_counts = {u: count for u, count in state["member_counts"]}
        self._instances = {}
        for j, fields in state["instances"]:
            instance = ThresholdInstance(guess=fields["guess"])
            instance.value = fields["value"]
            instance.seeds = set(fields["seeds"])
            instance.covered = set(fields["covered"])
            self._instances[j] = instance
        self._floor_lazy = False
        self._floor_dirty = False

    # -- introspection -----------------------------------------------------

    @property
    def instance_count(self) -> int:
        """Number of live instances (``O(log k / β)``)."""
        return len(self._instances)

    @property
    def max_singleton(self) -> float:
        """The running ``m`` (Figure 3's "Max Cardinality" generalised)."""
        return self._m
