"""Blog-Watch swap oracle (Saha & Getoor, SDM 2009).

A swap-based algorithm for online Maximum k-Coverage with a 1/4
approximation ratio and O(k) update cost (Table 2).  It fills the candidate
set greedily while smaller than ``k``; once full, an incoming user ``u`` is
swapped against the seed ``Y`` maximising the post-swap value, and the swap
is committed when the improvement is at least ``f(S)/k``:

    f(S − Y + u) − f(S) ≥ f(S) / k.

Coverage arithmetic (reference counts, exclusive contributions, post-swap
values) lives in :class:`~repro.core.oracles.swap_base.SwapOracleBase`.
Modular influence functions only (Table 2 lists this oracle under
"Cardinality"; weighted cardinality also works because it stays modular).
"""

from __future__ import annotations

from typing import Optional

from repro.core.oracles.base import register_oracle
from repro.core.oracles.swap_base import SwapOracleBase

__all__ = ["BlogWatchOracle"]


@register_oracle("blog_watch")
class BlogWatchOracle(SwapOracleBase):
    """Best-eviction swap oracle: 1/4-approximate, O(k) per update."""

    ratio_description = "1/4"

    def _consider_swap(self, user: int) -> None:
        """Swap in ``user`` for the best eviction when gain ≥ f(S)/k."""
        best_value = self._value
        best_evicted: Optional[int] = None
        for candidate in self._seeds:
            value = self._post_swap_value(candidate, user)
            if value > best_value:
                best_value = value
                best_evicted = candidate
        if best_evicted is None:
            return
        if best_value - self._value >= self._value / self._k:
            self._remove_seed(best_evicted)
            self._add_seed(user)
