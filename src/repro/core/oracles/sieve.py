"""SieveStreaming checkpoint oracle (Badanidiyuru et al., KDD 2014).

The oracle of Section 4.3.  It maintains one *instance* per guess
``v_j = (1+β)^j`` of the optimum over the suffix, for ``j`` such that
``m ≤ (1+β)^j ≤ 2·k·m`` where ``m = max_u f(I_t[i](u))`` is the largest
single influence-set value observed so far.  Instance ``j`` adds user ``u``
to its candidate set ``CX_j`` when ``|CX_j| < k`` and the marginal gain
clears the sieve threshold

    f(I(CX_j ∪ {u})) − f(I(CX_j)) ≥ (v_j/2 − f(I(CX_j))) / (k − |CX_j|).

At least one maintained guess is within ``(1+β)`` of the true optimum, which
yields the ``(1/2 − β)`` approximation ratio (Table 2).  When ``m`` grows,
instances whose guesses drop below the valid range are discarded and new
ones are created lazily — freshly created instances do *not* replay past
elements, exactly as in the streaming original.

The reported Λ value is the best-so-far snapshot maintained by the base
class, covering both all instance solutions and the best singleton.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles.base import CheckpointOracle, register_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["SieveStreamingOracle"]

#: Tolerance guarding float rounding in ``log`` index computations.
_EPS = 1e-9


class _Instance:
    """One sieve instance: a guess of OPT plus its candidate solution."""

    __slots__ = ("guess", "seeds", "covered", "value")

    def __init__(self, guess: float):
        self.guess = guess
        self.seeds: Set[int] = set()
        self.covered: Set[int] = set()
        self.value: float = 0.0


@register_oracle("sieve")
class SieveStreamingOracle(CheckpointOracle):
    """SieveStreaming adapted to SIM through SSM (case study, Section 4.3)."""

    ratio_description = "1/2 - beta"

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index: AppendOnlyInfluenceIndex,
        beta: float = 0.1,
    ):
        super().__init__(k=k, func=func, index=index)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self._beta = beta
        self._log_base = math.log1p(beta)
        self._m: float = 0.0
        self._instances: Dict[int, _Instance] = {}
        self._singleton_cache: Dict[int, float] = {}

    @property
    def instance_count(self) -> int:
        """Number of live sieve instances (``O(log k / β)``)."""
        return len(self._instances)

    @property
    def max_singleton(self) -> float:
        """The running ``m`` (Figure 3's "Max Cardinality" generalised)."""
        return self._m

    def process(self, user: int, new_member: int) -> None:
        singleton = self._refresh_singleton(user, new_member)
        if singleton > self._m:
            self._m = singleton
            self._refresh_instances()
        modular = self._func.modular
        weight = self._func.weight(new_member) if modular else 0.0
        best_instance = None
        for instance in self._instances.values():
            if user in instance.seeds:
                self._refresh_member(instance, user, new_member, weight)
            elif len(instance.seeds) < self._k:
                self._try_admit(instance, user)
            if best_instance is None or instance.value > best_instance.value:
                best_instance = instance
        self._offer_solution(singleton, (user,))
        if best_instance is not None:
            self._offer_solution(best_instance.value, best_instance.seeds)

    # -- internals -------------------------------------------------------

    def _refresh_singleton(self, user: int, new_member: int) -> float:
        """Update and return ``f(I(user))`` after ``new_member`` joined."""
        if self._func.modular:
            value = self._singleton_cache.get(user, 0.0) + self._func.weight(
                new_member
            )
        else:
            value = self._func.evaluate((user,), self._index)
        self._singleton_cache[user] = value
        return value

    def _refresh_instances(self) -> None:
        """Align the instance set with ``{j : m ≤ (1+β)^j ≤ 2·k·m}``."""
        if self._m <= 0.0:
            return
        low = math.ceil(math.log(self._m) / self._log_base - _EPS)
        high = math.floor(math.log(2 * self._k * self._m) / self._log_base + _EPS)
        for j in [j for j in self._instances if j < low or j > high]:
            del self._instances[j]
        for j in range(low, high + 1):
            if j not in self._instances:
                self._instances[j] = _Instance(guess=(1.0 + self._beta) ** j)

    def _refresh_member(
        self, instance: _Instance, user: int, new_member: int, weight: float
    ) -> None:
        """A selected seed's influence set grew; update the instance value."""
        if self._func.modular:
            if new_member not in instance.covered:
                instance.covered.add(new_member)
                instance.value += weight
        else:
            instance.value = self._func.evaluate(instance.seeds, self._index)

    def _try_admit(self, instance: _Instance, user: int) -> None:
        """Apply the sieve threshold test for a non-member user."""
        remaining = self._k - len(instance.seeds)
        threshold = (instance.guess / 2.0 - instance.value) / remaining
        if self._func.modular:
            members = self._index.influence_set(user)
            covered = instance.covered
            weight = self._func.weight
            gain = sum(weight(v) for v in members if v not in covered)
            if gain >= threshold and gain > 0.0:
                instance.seeds.add(user)
                covered.update(members)
                instance.value += gain
        else:
            with_user = self._func.evaluate(
                list(instance.seeds) + [user], self._index
            )
            gain = with_user - instance.value
            if gain >= threshold and gain > 0.0:
                instance.seeds.add(user)
                instance.value = with_user
