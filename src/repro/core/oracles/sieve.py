"""SieveStreaming checkpoint oracle (Badanidiyuru et al., KDD 2014).

The oracle of Section 4.3.  It maintains one *instance* per guess
``v_j = (1+β)^j`` of the optimum over the suffix, for ``j`` such that
``m ≤ (1+β)^j ≤ 2·k·m`` where ``m = max_u f(I_t[i](u))`` is the largest
single influence-set value observed so far.  Instance ``j`` adds user ``u``
to its candidate set ``CX_j`` when ``|CX_j| < k`` and the marginal gain
clears the sieve threshold

    f(I(CX_j ∪ {u})) − f(I(CX_j)) ≥ (v_j/2 − f(I(CX_j))) / (k − |CX_j|).

At least one maintained guess is within ``(1+β)`` of the true optimum, which
yields the ``(1/2 − β)`` approximation ratio (Table 2).  When ``m`` grows,
instances whose guesses drop below the valid range are discarded and new
ones are created lazily — freshly created instances do *not* replay past
elements, exactly as in the streaming original.

The guessing scaffold, the singleton admission prefilter, the batched slide
entry point, and the covered-set arithmetic all live in
:class:`~repro.core.oracles.streaming_base.StreamingThresholdOracle`; this
class only supplies the sieve admission bar above.  Because that bar
depends on the instance's current value and fill level, admissions and
value growth can lower it, so :attr:`bar_tracks_value` is True and the base
keeps the admission floor sound with min-updates at those points.

The reported Λ value is the best-so-far snapshot maintained by
:class:`~repro.core.oracles.base.CheckpointOracle`, covering both all
instance solutions and the best singleton.
"""

from __future__ import annotations

from repro.core.oracles.base import register_oracle
from repro.core.oracles.streaming_base import (
    StreamingThresholdOracle,
    ThresholdInstance,
)

__all__ = ["SieveStreamingOracle"]


@register_oracle("sieve")
class SieveStreamingOracle(StreamingThresholdOracle):
    """SieveStreaming adapted to SIM through SSM (case study, Section 4.3)."""

    ratio_description = "1/2 - beta"

    bar_tracks_value = True

    def _instance_bar(self, instance: ThresholdInstance) -> float:
        """``(v_j/2 − f(I(CX_j))) / (k − |CX_j|)`` — tightens as CX fills."""
        return (instance.guess / 2.0 - instance.value) / (
            self._k - len(instance.seeds)
        )
