"""SieveStreaming checkpoint oracle (Badanidiyuru et al., KDD 2014).

The oracle of Section 4.3.  It maintains one *instance* per guess
``v_j = (1+β)^j`` of the optimum over the suffix, for ``j`` such that
``m ≤ (1+β)^j ≤ 2·k·m`` where ``m = max_u f(I_t[i](u))`` is the largest
single influence-set value observed so far.  Instance ``j`` adds user ``u``
to its candidate set ``CX_j`` when ``|CX_j| < k`` and the marginal gain
clears the sieve threshold

    f(I(CX_j ∪ {u})) − f(I(CX_j)) ≥ (v_j/2 − f(I(CX_j))) / (k − |CX_j|).

At least one maintained guess is within ``(1+β)`` of the true optimum, which
yields the ``(1/2 − β)`` approximation ratio (Table 2).  When ``m`` grows,
instances whose guesses drop below the valid range are discarded and new
ones are created lazily — freshly created instances do *not* replay past
elements, exactly as in the streaming original.

The reported Λ value is the best-so-far snapshot maintained by the base
class, covering both all instance solutions and the best singleton.

**Hot-path structure.**  A feed only matters to an instance when the fed
user is one of its seeds (coverage bookkeeping) or when it could clear the
admission threshold.  For *modular* functions the admission gain is
computed purely from the fed user's fresh members, so it is bounded by the
user's singleton value ``f(I(u))`` — which the oracle already tracks.  The
update therefore keeps a per-user count of instances holding the user as a
seed and the minimum admission threshold over unfilled instances
(``_admit_floor``): feeds from non-seed users below the floor are
dismissed with two O(1) checks and no set work at all.  (Non-modular
functions skip the prefilter: their gains are measured against lazily
refreshed instance values and may exceed the singleton bound.)  Solutions
are offered to the best-so-far snapshot at *mutation* time (admission,
coverage growth), which is equivalent to the previous per-feed
best-instance scan because an instance's value can only become the new
maximum by changing.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from repro.core.oracles.base import CheckpointOracle, register_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["SieveStreamingOracle"]

#: Tolerance guarding float rounding in ``log`` index computations.
_EPS = 1e-9


class _Instance:
    """One sieve instance: a guess of OPT plus its candidate solution."""

    __slots__ = ("guess", "seeds", "covered", "value")

    def __init__(self, guess: float):
        self.guess = guess
        self.seeds: Set[int] = set()
        self.covered: Set[int] = set()
        self.value: float = 0.0


@register_oracle("sieve")
class SieveStreamingOracle(CheckpointOracle):
    """SieveStreaming adapted to SIM through SSM (case study, Section 4.3)."""

    ratio_description = "1/2 - beta"

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index,
        beta: float = 0.1,
    ):
        super().__init__(k=k, func=func, index=index)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self._beta = beta
        self._log_base = math.log1p(beta)
        self._m: float = 0.0
        self._instances: Dict[int, _Instance] = {}
        self._singleton_cache: Dict[int, float] = {}
        # Guess-exponent range [low, high] of the live instances; refreshes
        # that leave it unchanged skip the rebuild entirely.
        self._bounds = (0, -1)
        self._modular = func.modular
        self._uniform = func.uniform_weight
        # user -> number of instances holding the user as a seed.
        self._member_counts: Dict[int, int] = {}
        # Minimum admission threshold over instances with free seats; a
        # non-seed user whose singleton value is below it cannot join any
        # instance (gain <= f(I(u)) by submodularity), so the whole
        # instance loop is skipped.
        self._admit_floor: float = math.inf

    @property
    def instance_count(self) -> int:
        """Number of live sieve instances (``O(log k / β)``)."""
        return len(self._instances)

    @property
    def max_singleton(self) -> float:
        """The running ``m`` (Figure 3's "Max Cardinality" generalised)."""
        return self._m

    def process(self, user: int, new_member: int) -> None:
        if self._modular:
            weight = (
                self._uniform
                if self._uniform is not None
                else self._func.weight(new_member)
            )
            singleton = self._singleton_cache.get(user, 0.0) + weight
        else:
            weight = 0.0
            singleton = self._func.evaluate((user,), self._index)
        self._singleton_cache[user] = singleton
        if singleton > self._m:
            self._m = singleton
            self._refresh_instances()
        if singleton > self._best_value:
            self._offer_solution(singleton, (user,))
        k = self._k
        # The singleton prefilters below are only sound for modular
        # functions, where the admission gain is computed purely from the
        # fed user's fresh members (gain <= f(I(u)) = singleton).  In the
        # non-modular path the gain is measured against a lazily-refreshed
        # instance value that can be stale-low, so the realized gain may
        # exceed the singleton bound — every under-k instance must be
        # offered the user.
        modular = self._modular
        if self._member_counts.get(user):
            for instance in self._instances.values():
                seats = k - len(instance.seeds)
                if user in instance.seeds:
                    self._refresh_member(instance, user, new_member, weight)
                elif seats > 0 and (
                    not modular
                    or singleton
                    >= (instance.guess / 2.0 - instance.value) / seats
                ):
                    self._try_admit(instance, user)
        elif not modular or singleton >= self._admit_floor:
            for instance in self._instances.values():
                seats = k - len(instance.seeds)
                if seats > 0 and (
                    not modular
                    or singleton
                    >= (instance.guess / 2.0 - instance.value) / seats
                ):
                    self._try_admit(instance, user)

    # -- internals -------------------------------------------------------

    def _recompute_admit_floor(self) -> None:
        """Refresh the minimum admission threshold over unfilled instances."""
        k = self._k
        floor = math.inf
        for instance in self._instances.values():
            seats = k - len(instance.seeds)
            if seats > 0:
                threshold = (instance.guess / 2.0 - instance.value) / seats
                if threshold < floor:
                    floor = threshold
        self._admit_floor = floor

    def _refresh_instances(self) -> None:
        """Align the instance set with ``{j : m ≤ (1+β)^j ≤ 2·k·m}``."""
        if self._m <= 0.0:
            return
        low = math.ceil(math.log(self._m) / self._log_base - _EPS)
        high = math.floor(math.log(2 * self._k * self._m) / self._log_base + _EPS)
        if (low, high) == self._bounds:
            return
        self._bounds = (low, high)
        instances = self._instances
        for j in [j for j in instances if j < low or j > high]:
            for seed in instances.pop(j).seeds:
                count = self._member_counts[seed] - 1
                if count:
                    self._member_counts[seed] = count
                else:
                    del self._member_counts[seed]
        base = 1.0 + self._beta
        guess = base ** low
        for j in range(low, high + 1):
            if j not in instances:
                instances[j] = _Instance(guess=guess)
            guess *= base
        self._recompute_admit_floor()

    def _refresh_member(
        self, instance: _Instance, user: int, new_member: int, weight: float
    ) -> None:
        """A selected seed's influence set grew; update the instance value."""
        if self._modular:
            if new_member not in instance.covered:
                instance.covered.add(new_member)
                instance.value += weight
            else:
                return
        else:
            instance.value = self._func.evaluate(instance.seeds, self._index)
        if instance.value > self._best_value:
            self._offer_solution(instance.value, instance.seeds)
        seats = self._k - len(instance.seeds)
        if seats > 0:
            # A value increase only ever lowers this instance's admission
            # threshold, so a one-sided min-update keeps the floor valid
            # (too low merely skips fewer feeds; never too high).
            threshold = (instance.guess / 2.0 - instance.value) / seats
            if threshold < self._admit_floor:
                self._admit_floor = threshold

    def _try_admit(self, instance: _Instance, user: int) -> None:
        """Apply the sieve threshold test for a non-member user."""
        remaining = self._k - len(instance.seeds)
        threshold = (instance.guess / 2.0 - instance.value) / remaining
        if self._modular:
            # One C-level set difference yields the uncovered members; with
            # a uniform weight the gain is just its size.
            fresh = self._index.fresh_members(user, instance.covered)
            if not fresh:
                return
            if self._uniform is not None:
                gain = self._uniform * len(fresh)
            else:
                weight = self._func.weight
                gain = sum(weight(v) for v in fresh)
            if gain >= threshold and gain > 0.0:
                instance.seeds.add(user)
                instance.covered |= fresh
                instance.value += gain
                self._note_admission(instance, user)
        else:
            with_user = self._func.evaluate(
                list(instance.seeds) + [user], self._index
            )
            gain = with_user - instance.value
            if gain >= threshold and gain > 0.0:
                instance.seeds.add(user)
                instance.value = with_user
                self._note_admission(instance, user)

    def _note_admission(self, instance: _Instance, user: int) -> None:
        """Bookkeeping after a successful admission."""
        self._member_counts[user] = self._member_counts.get(user, 0) + 1
        if instance.value > self._best_value:
            self._offer_solution(instance.value, instance.seeds)
        self._recompute_admit_floor()
