/* Compiled fast path for the columnar oracle kernel.
 *
 * One call per merged (user, slide) event, mirroring
 * ColumnarThresholdKernel._process_user exactly: singleton-cache update,
 * m refresh (with the full instance-range rebuild when a bound moves),
 * best-so-far offer, admission gate, and the per-(column, slot)
 * admission pass over coverage bitsets.
 *
 * Float semantics must match CPython bit-for-bit -- this is an exact
 * replica of the object plane, not an approximation:
 *   - link against the same libm the interpreter uses (log/pow/ceil);
 *   - compile WITHOUT -ffast-math and WITH -ffp-contract=off so no FMA
 *     contraction changes rounding versus the Python expressions;
 *   - every formula below is transcribed operation-for-operation from
 *     the oracles (sieve bar, threshold bar, guess-chain walk).
 *
 * All state lives in numpy arrays owned by the Python kernel; this file
 * only ever writes through the pointers in EventCtx.  Python re-fills
 * the context whenever an array is reallocated (growth/compaction).
 */
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    /* dims / scalars */
    int64_t cap;      /* column capacity (row stride of mem2d/cache2d) */
    int64_t jcap;     /* instance-plane slot capacity */
    int64_t kcap;     /* seed-list capacity (= k) */
    int64_t wcap;     /* coverage word capacity (stride of icov rows) */
    int64_t k;
    int64_t bar_mode; /* 1 = sieve (bar tracks value), 0 = threshold */
    double uniform;
    double base;      /* 1 + beta */
    double log_base;  /* log1p(beta), computed by Python */
    /* per-column scalars */
    double *m;
    double *best;
    double *floor_;
    double *rthresh;
    int64_t *blow;
    int64_t *bhigh;
    int64_t *starts;
    /* instance plane (cap, jcap) */
    double *ival;
    double *ibar;
    double *iguess;
    int16_t *inseed;
    int64_t *iseed_ids; /* (cap, jcap, kcap) */
    int64_t *best_ids;  /* (cap, kcap) */
    int64_t *best_ns;   /* (cap) */
    uint8_t *dirtyf;    /* (cap) */
    uint64_t *icov;     /* (cap, jcap, wcap) */
    uint64_t *mem2d;    /* (urows, cap) */
    double *cache2d;    /* (urows, cap) */
    /* scratch (sized by Python, see _ensure_scratch) */
    int64_t *lanes;   /* influence-pair lanes, slide order */
    int64_t *times;   /* influence-pair latest times, slide order */
    int64_t *skeys;   /* (time, idx) pairs for the stable sort */
    uint64_t *cum;    /* (pairs + 1, w) suffix cumulative-OR table */
    int64_t *counts;  /* (cap) multi-pair gain counts */
    int64_t *los;     /* this slide's pair feed boundaries */
    uint64_t *freshb; /* (wcap) per-entry fresh-member words */
} EventCtx;

/* Empty-instance admission bar, matching the oracle formulas exactly:
 * sieve: (guess / 2.0 - value) / (k - len(seeds)) with value=0, seeds={}
 * threshold: guess / (2.0 * k)
 */
static double empty_bar(const EventCtx *c, double guess) {
    if (c->bar_mode)
        return (guess / 2.0 - 0.0) / (double)(c->k);
    return guess / (2.0 * (double)c->k);
}

/* The C twin of ColumnarThresholdKernel._refresh_instances. */
static int refresh_col(EventCtx *c, int64_t col) {
    double m = c->m[col];
    if (m <= 0.0)
        return 0;
    double lb = c->log_base;
    int64_t low = (int64_t)ceil(log(m) / lb - 1e-9);
    int64_t high = (int64_t)floor(log((double)(2 * c->k) * m) / lb + 1e-9);
    int64_t old_low = c->blow[col];
    int64_t old_high = c->bhigh[col];
    double t1 = pow(c->base, (double)low + 1e-9);
    double t2 = pow(c->base, (double)(high + 1) - 1e-9) / (2.0 * (double)c->k);
    c->rthresh[col] = (t1 < t2 ? t1 : t2) * (1.0 - 1e-9);
    if (low == old_low && high == old_high)
        return 0;
    int64_t width = high - low + 1;
    if (width > c->jcap)
        return 1; /* guess ladder outgrew the slot budget */
    int64_t old_width = old_high >= old_low ? old_high - old_low + 1 : 0;
    c->blow[col] = low;
    c->bhigh[col] = high;
    int64_t jc = c->jcap, kc = c->kcap, wc = c->wcap;
    double *ival = c->ival + col * jc;
    double *ibar = c->ibar + col * jc;
    double *iguess = c->iguess + col * jc;
    int16_t *inseed = c->inseed + col * jc;
    int64_t *ids = c->iseed_ids + col * jc * kc;
    uint64_t *icov = c->icov + col * jc * wc;
    int64_t shift = old_width ? low - old_low : 0;
    if (shift > 0) {
        int64_t tear = shift < old_width ? shift : old_width;
        for (int64_t s = 0; s < tear; s++) {
            int64_t cnt = inseed[s];
            if (cnt) {
                uint64_t clear = ~(1ULL << (uint64_t)((old_low + s) & 63));
                for (int64_t q = 0; q < cnt; q++)
                    c->mem2d[ids[s * kc + q] * c->cap + col] &= clear;
            }
        }
        int64_t survivors = old_width - shift;
        if (survivors > 0) {
            memmove(ival, ival + shift, (size_t)survivors * sizeof(double));
            memmove(ibar, ibar + shift, (size_t)survivors * sizeof(double));
            memmove(iguess, iguess + shift,
                    (size_t)survivors * sizeof(double));
            memmove(inseed, inseed + shift,
                    (size_t)survivors * sizeof(int16_t));
            memmove(icov, icov + shift * wc,
                    (size_t)(survivors * wc) * sizeof(uint64_t));
            memmove(ids, ids + shift * kc,
                    (size_t)(survivors * kc) * sizeof(int64_t));
        }
    }
    int64_t survivors = old_width - shift;
    if (survivors < 0)
        survivors = 0;
    if (old_width > width) {
        for (int64_t s = width; s < old_width; s++) {
            ival[s] = 0.0;
            ibar[s] = INFINITY;
            iguess[s] = 0.0;
            inseed[s] = 0;
            memset(icov + s * wc, 0, (size_t)wc * sizeof(uint64_t));
        }
    }
    if (width > survivors) {
        /* Walk the object plane's exact guess chain from base**low. */
        double guess = pow(c->base, (double)low);
        for (int64_t s = 0; s < width; s++) {
            if (s >= survivors) {
                iguess[s] = guess;
                ival[s] = 0.0;
                inseed[s] = 0;
                memset(icov + s * wc, 0, (size_t)wc * sizeof(uint64_t));
                ibar[s] = empty_bar(c, guess);
            }
            guess *= c->base;
        }
    }
    double fl = INFINITY;
    for (int64_t s = 0; s < jc; s++)
        if (ibar[s] < fl)
            fl = ibar[s];
    c->floor_[col] = fl;
    c->dirtyf[col] = 0;
    return 0;
}

/* Stable sort by (time, original index) == numpy argsort(kind="stable"). */
static int cmp_pair(const void *x, const void *y) {
    const int64_t *p = (const int64_t *)x;
    const int64_t *q = (const int64_t *)y;
    if (p[0] != q[0])
        return p[0] < q[0] ? -1 : 1;
    return p[1] < q[1] ? -1 : (p[1] > q[1] ? 1 : 0);
}

/* Time-sorted cumulative-OR table of the user's influence pairs:
 * cum[i] = OR of lane bits of pairs with sort position >= i, so cum at
 * lower_bound(times, start) is the user's suffix influence set at start.
 */
static void build_suffix(EventCtx *c, int64_t count, int64_t w) {
    int64_t *sk = c->skeys;
    for (int64_t i = 0; i < count; i++) {
        sk[2 * i] = c->times[i];
        sk[2 * i + 1] = i;
    }
    qsort(sk, (size_t)count, 2 * sizeof(int64_t), cmp_pair);
    uint64_t *cum = c->cum;
    memset(cum + count * w, 0, (size_t)w * sizeof(uint64_t));
    for (int64_t i = count - 1; i >= 0; i--) {
        uint64_t *dst = cum + i * w;
        const uint64_t *nxt = cum + (i + 1) * w;
        for (int64_t j = 0; j < w; j++)
            dst[j] = nxt[j];
        int64_t ln = c->lanes[sk[2 * i + 1]];
        dst[ln >> 6] |= 1ULL << (uint64_t)(ln & 63);
    }
}

/* The C twin of ColumnarThresholdKernel._admit_pass for one gated
 * column, processed slot-ascending -- the same (column, slot) order the
 * vectorized pass applies entries and folds best offers in.  Entries are
 * distinct (column, slot) pairs and freshly-set membership bits are
 * never re-read within an event, so sequential == vectorized.
 */
static void admit_col(EventCtx *c, int64_t col, int64_t urow, double sv,
                      uint64_t mbits, int64_t count, int64_t w,
                      uint64_t *mrow) {
    int64_t low = c->blow[col];
    int64_t width = c->bhigh[col] - low + 1;
    if (width <= 0)
        return;
    int64_t start = c->starts[col];
    const int64_t *sk = c->skeys;
    int64_t loi = 0, hii = count;
    while (loi < hii) {
        int64_t mid = (loi + hii) >> 1;
        if (sk[2 * mid] < start)
            loi = mid + 1;
        else
            hii = mid;
    }
    const uint64_t *suffix = c->cum + loi * w;
    int64_t jc = c->jcap, kc = c->kcap, wc = c->wcap, k = c->k;
    double *ival = c->ival + col * jc;
    double *ibar = c->ibar + col * jc;
    double *iguess = c->iguess + col * jc;
    int16_t *inseed = c->inseed + col * jc;
    int64_t *ids = c->iseed_ids + col * jc * kc;
    uint64_t *icov = c->icov + col * jc * wc;
    uint64_t *freshb = c->freshb;
    for (int64_t s = 0; s < width; s++) {
        int is_mem = (int)((mbits >> (uint64_t)((low + s) & 63)) & 1ULL);
        int is_cand = sv >= ibar[s];
        if (!is_mem && !is_cand)
            continue;
        uint64_t *cov = icov + s * wc;
        int64_t cnt = 0;
        for (int64_t j = 0; j < w; j++) {
            uint64_t f = suffix[j] & ~cov[j];
            freshb[j] = f;
            cnt += (int64_t)__builtin_popcountll(f);
        }
        double gain = (double)cnt * c->uniform;
        int admit = !is_mem && gain >= ibar[s] && gain > 0.0;
        int apply = admit || (is_mem && cnt > 0);
        if (!apply)
            continue;
        ival[s] += gain;
        for (int64_t j = 0; j < w; j++)
            cov[j] |= freshb[j];
        if (admit) {
            ids[s * kc + inseed[s]] = urow;
            mrow[col] |= 1ULL << (uint64_t)((low + s) & 63);
            inseed[s] = (int16_t)(inseed[s] + 1);
        }
        int64_t ns = inseed[s];
        if (c->bar_mode) {
            /* Sieve: every applied entry recomputes its bar. */
            double nb;
            if (ns >= k)
                nb = INFINITY;
            else
                nb = (iguess[s] / 2.0 - ival[s]) / (double)(k - ns);
            ibar[s] = nb;
            if (nb < c->floor_[col])
                c->floor_[col] = nb;
            if (admit)
                c->dirtyf[col] = 1;
        } else if (admit && ns >= k) {
            /* Threshold: static bars, only fills go to +inf. */
            ibar[s] = INFINITY;
            c->dirtyf[col] = 1;
        }
        double v = ival[s];
        if (v > c->best[col]) {
            c->best[col] = v;
            for (int64_t q = 0; q < ns; q++)
                c->best_ids[col * kc + q] = ids[s * kc + q];
            c->best_ns[col] = ns;
        }
    }
}

/* One merged (user, slide) event over columns [a, b).
 * urow: the user's interned row; nlos: this slide's pair count (los
 * holds the feed boundaries when > 1); pcount: the user's total
 * influence-pair count in lanes/times; w: live coverage words.
 * Returns non-zero on invariant breach (ladder overflow).
 */
int process_event(EventCtx *c, int64_t urow, int64_t a, int64_t b,
                  int64_t nlos, int64_t pcount, int64_t w) {
    double *cache = c->cache2d + urow * c->cap;
    double uniform = c->uniform;
    if (nlos == 1) {
        for (int64_t col = a; col < b; col++)
            cache[col] += uniform;
    } else {
        int64_t *counts = c->counts;
        for (int64_t col = a; col < b; col++)
            counts[col] = 0;
        for (int64_t i = 0; i < nlos; i++) {
            int64_t lo = c->los[i];
            if (lo < b)
                counts[lo > a ? lo : a] += 1;
        }
        int64_t run = 0;
        for (int64_t col = a; col < b; col++) {
            run += counts[col];
            cache[col] += (double)run * uniform;
        }
    }
    for (int64_t col = a; col < b; col++) {
        double sv = cache[col];
        if (sv > c->m[col]) {
            c->m[col] = sv;
            if (sv >= c->rthresh[col]) {
                int st = refresh_col(c, col);
                if (st)
                    return st;
            }
        }
    }
    for (int64_t col = a; col < b; col++) {
        double sv = cache[col];
        if (sv > c->best[col]) {
            c->best[col] = sv;
            c->best_ns[col] = 1;
            c->best_ids[col * c->kcap] = urow;
        }
    }
    uint64_t *mrow = c->mem2d + urow * c->cap;
    int built = 0;
    for (int64_t col = a; col < b; col++) {
        uint64_t mbits = mrow[col];
        double sv = cache[col];
        if (!(sv >= c->floor_[col]) && mbits == 0)
            continue;
        if (!built) {
            if (pcount == 0)
                break; /* no influence pairs -> no masks -> no-op */
            build_suffix(c, pcount, w);
            built = 1;
        }
        admit_col(c, col, urow, sv, mbits, pcount, w, mrow);
    }
    return 0;
}
