"""Checkpoint oracle interface: append-only SSO behind the SSM mapping.

Section 4.2 adapts append-only *set-stream* algorithms into checkpoint
oracles through the Set-Stream Mapping (SSM) interface:

1. identify users whose suffix influence set ``I_t[i](·)`` changed;
2. feed the oracle a stream of those updated influence sets;
3. the oracle maintains at most ``k`` users approximating the best seed set.

In this implementation the checkpoint's suffix index — either a private
:class:`~repro.core.influence_index.AppendOnlyInfluenceIndex` (reference
mode) or a :class:`~repro.core.influence_index.SuffixView` of the
framework's shared :class:`~repro.core.influence_index.VersionedInfluenceIndex`
— applies the update first, and the caller reports exactly which influencer
users gained a new member (always the performer of the arriving action).
:meth:`CheckpointOracle.process` then receives ``(user, new_member)`` — the
finest-grained SSM event.  Oracles never mutate the index; they only read
``influence_set``/``coverage``, which both index kinds provide.

The oracle's reported value must be *monotone non-decreasing* over time:
Lemma 2's proof needs it, and SIC's pruning rule compares values across
checkpoints.  Greedy-style oracles are naturally monotone, but e.g.
SieveStreaming deletes threshold instances when its OPT estimate grows,
which can transiently lower the current maximum.  The base class therefore
keeps a *best-so-far snapshot* (seeds + value).  The snapshot remains a
valid lower bound: on an append-only suffix, influence sets only grow, so a
recorded ``f`` value never overstates the snapshot seeds' current value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.influence.functions import InfluenceFunction

__all__ = [
    "CheckpointOracle",
    "register_oracle",
    "make_oracle",
    "oracle_names",
]


class CheckpointOracle(ABC):
    """An ε-approximate streaming submodular maximiser over one suffix."""

    #: Documented approximation ratio in the append-only model (Table 2);
    #: informational, expressed as a function of β where applicable.
    ratio_description: str = "unspecified"

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index,
    ):
        if k <= 0:
            raise ValueError(f"cardinality constraint k must be positive, got {k}")
        self._k = k
        self._func = func
        self._index = index
        self._best_value: float = 0.0
        self._best_seeds: Tuple[int, ...] = ()

    @property
    def k(self) -> int:
        """The cardinality constraint."""
        return self._k

    @abstractmethod
    def process(self, user: int, new_member: int) -> None:
        """Notify that ``user``'s influence set gained ``new_member``.

        The checkpoint index already reflects the update; implementations
        read the full current set via ``self._index.influence_set(user)``.
        """

    def process_delta(self, user: int, new_members: Sequence[int]) -> None:
        """Notify that ``user`` gained all of ``new_members`` this slide.

        The index already reflects the *whole* slide.  The default loops
        :meth:`process`, which is exact for oracles whose update reads the
        index rather than the event (swap oracles, greedy); oracles that
        accumulate per-event state override this with a genuinely merged
        update (see
        :class:`~repro.core.oracles.streaming_base.StreamingThresholdOracle`).
        """
        for member in new_members:
            self.process(user, member)

    def process_batch(
        self, deltas: Iterable[Tuple[int, Sequence[int]]]
    ) -> None:
        """One (checkpoint, slide) batch of merged ``(user, members)`` deltas.

        Subclasses override to amortise per-slide bookkeeping across the
        whole batch; the default simply loops :meth:`process_delta`.
        """
        for user, members in deltas:
            self.process_delta(user, members)

    @property
    def value(self) -> float:
        """Monotone best-so-far influence value Λ of the maintained seeds."""
        return self._best_value

    @property
    def seeds(self) -> FrozenSet[int]:
        """The best-so-far seed set (at most ``k`` users)."""
        return frozenset(self._best_seeds)

    def _offer_solution(self, value: float, seeds) -> None:
        """Snapshot ``seeds`` when they beat the best recorded solution."""
        if value > self._best_value:
            self._best_value = value
            self._best_seeds = tuple(seeds)

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Explicit JSON-safe dynamic state (constructor args excluded).

        The construction recipe (oracle name, ``k``, function, params)
        lives in the owning framework's
        :class:`~repro.core.checkpoint.OracleSpec`; this dict carries only
        what processing accumulated.  Subclasses extend the base document
        (the monotone best-so-far snapshot) with their own fields and
        restore them in :meth:`load_state`.
        """
        return {
            "best_value": self._best_value,
            "best_seeds": list(self._best_seeds),
        }

    def load_state(self, state: dict) -> None:
        """Restore dynamic state captured by :meth:`state_dict`.

        The oracle must be freshly constructed (same spec, same index
        arrangement) before loading.
        """
        self._best_value = state["best_value"]
        self._best_seeds = tuple(state["best_seeds"])

    # -- shared helpers ----------------------------------------------------

    def _singleton_value(self, user: int) -> float:
        """``f(I(user))`` for the current suffix."""
        if self._func.modular:
            return self._func.value_of_covered(self._index.influence_set(user))
        return self._func.evaluate((user,), self._index)

    def _set_value(self, seeds) -> float:
        """``f(I(seeds))`` for the current suffix."""
        if self._func.modular:
            return self._func.value_of_covered(self._index.coverage(seeds))
        return self._func.evaluate(seeds, self._index)


_REGISTRY: Dict[str, Callable[..., CheckpointOracle]] = {}


def register_oracle(name: str) -> Callable:
    """Class decorator registering an oracle under ``name``."""

    def decorator(cls):
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"oracle name {name!r} already registered")
        _REGISTRY[key] = cls
        return cls

    return decorator


def make_oracle(
    name: str,
    k: int,
    func: InfluenceFunction,
    index,
    **kwargs,
) -> CheckpointOracle:
    """Instantiate a registered oracle by name (see :func:`oracle_names`)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown oracle {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](k=k, func=func, index=index, **kwargs)


def oracle_names() -> list:
    """Names of all registered oracles."""
    return sorted(_REGISTRY)
