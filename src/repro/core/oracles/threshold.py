"""ThresholdStream checkpoint oracle (Kumar et al., TOPC 2015).

The second general-function oracle of Table 2.  Like SieveStreaming it runs
one instance per geometric guess ``v_j = (1+β)^j`` of the optimum, but uses
the simpler *threshold-greedy* admission rule: user ``u`` joins instance
``j`` while ``|CX_j| < k`` whenever its marginal gain is at least

    v_j / (2·k).

An element clearing this bar ``k`` times yields value ≥ ``v_j/2``; combined
with the geometric guessing this gives the same ``(1/2 − β)`` ratio with
``O(log k / β)`` update cost (Table 2).  The admission rule differs from the
sieve rule (which tightens as the instance fills up), making this oracle a
useful ablation partner.

Everything but the bar — geometric guessing, the singleton admission
prefilter, the batched slide entry point, covered-set arithmetic — is
inherited from
:class:`~repro.core.oracles.streaming_base.StreamingThresholdOracle`.  The
bar is static per instance, so :attr:`bar_tracks_value` is False and the
admission floor only moves when an instance fills up.
"""

from __future__ import annotations

from repro.core.oracles.base import register_oracle
from repro.core.oracles.streaming_base import (
    StreamingThresholdOracle,
    ThresholdInstance,
)

__all__ = ["ThresholdStreamOracle"]


@register_oracle("threshold")
class ThresholdStreamOracle(StreamingThresholdOracle):
    """Threshold-greedy SSO adapted to SIM through SSM."""

    ratio_description = "1/2 - beta"

    bar_tracks_value = False

    def _instance_bar(self, instance: ThresholdInstance) -> float:
        """``v_j / (2k)`` — independent of the instance's fill and value."""
        return instance.guess / (2.0 * self._k)
