"""ThresholdStream checkpoint oracle (Kumar et al., TOPC 2015).

The second general-function oracle of Table 2.  Like SieveStreaming it runs
one instance per geometric guess ``v_j = (1+β)^j`` of the optimum, but uses
the simpler *threshold-greedy* admission rule: user ``u`` joins instance
``j`` while ``|CX_j| < k`` whenever its marginal gain is at least

    v_j / (2·k).

An element clearing this bar ``k`` times yields value ≥ ``v_j/2``; combined
with the geometric guessing this gives the same ``(1/2 − β)`` ratio with
``O(log k / β)`` update cost (Table 2).  The admission rule differs from the
sieve rule (which tightens as the instance fills up), making this oracle a
useful ablation partner.

The hot path mirrors :mod:`repro.core.oracles.sieve`: for modular
functions the admission gain is bounded by the fed user's singleton value,
so a per-user seed membership count plus the minimum admission bar over
unfilled instances (``_admit_floor``) dismisses most feeds with two O(1)
checks; non-modular functions bypass the prefilter (their gains are taken
against lazily refreshed instance values).  Solutions are offered to the
best-so-far snapshot at mutation time.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from repro.core.oracles.base import CheckpointOracle, register_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["ThresholdStreamOracle"]

_EPS = 1e-9


class _Instance:
    """One guess of OPT with its threshold-greedy candidate solution."""

    __slots__ = ("guess", "seeds", "covered", "value")

    def __init__(self, guess: float):
        self.guess = guess
        self.seeds: Set[int] = set()
        self.covered: Set[int] = set()
        self.value: float = 0.0


@register_oracle("threshold")
class ThresholdStreamOracle(CheckpointOracle):
    """Threshold-greedy SSO adapted to SIM through SSM."""

    ratio_description = "1/2 - beta"

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index,
        beta: float = 0.1,
    ):
        super().__init__(k=k, func=func, index=index)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self._beta = beta
        self._log_base = math.log1p(beta)
        self._m: float = 0.0
        self._instances: Dict[int, _Instance] = {}
        self._singleton_cache: Dict[int, float] = {}
        # Guess-exponent range [low, high] of the live instances; refreshes
        # that leave it unchanged skip the rebuild entirely.
        self._bounds = (0, -1)
        self._modular = func.modular
        self._uniform = func.uniform_weight
        # user -> number of instances holding the user as a seed.
        self._member_counts: Dict[int, int] = {}
        # Minimum admission bar over instances with free seats; non-seed
        # users whose singleton value falls below it cannot join anywhere.
        self._admit_floor: float = math.inf

    @property
    def instance_count(self) -> int:
        """Number of live instances."""
        return len(self._instances)

    def process(self, user: int, new_member: int) -> None:
        if self._modular:
            weight = (
                self._uniform
                if self._uniform is not None
                else self._func.weight(new_member)
            )
            singleton = self._singleton_cache.get(user, 0.0) + weight
        else:
            weight = 0.0
            singleton = self._func.evaluate((user,), self._index)
        self._singleton_cache[user] = singleton
        if singleton > self._m:
            self._m = singleton
            self._refresh_instances()
        if singleton > self._best_value:
            self._offer_solution(singleton, (user,))
        k = self._k
        two_k = 2.0 * k
        # Like the sieve oracle, the singleton prefilters are only sound
        # for modular functions: the non-modular admission gain is taken
        # against a lazily-refreshed (possibly stale-low) instance value
        # and can exceed the singleton bound.
        modular = self._modular
        if self._member_counts.get(user):
            for instance in self._instances.values():
                if user in instance.seeds:
                    self._refresh_member(instance, new_member, weight)
                elif len(instance.seeds) < k and (
                    not modular or singleton >= instance.guess / two_k
                ):
                    self._try_admit(instance, user)
        elif not modular or singleton >= self._admit_floor:
            for instance in self._instances.values():
                if len(instance.seeds) < k and (
                    not modular or singleton >= instance.guess / two_k
                ):
                    self._try_admit(instance, user)

    def _recompute_admit_floor(self) -> None:
        """Refresh the minimum admission bar over unfilled instances."""
        two_k = 2.0 * self._k
        floor = math.inf
        for instance in self._instances.values():
            if len(instance.seeds) < self._k:
                bar = instance.guess / two_k
                if bar < floor:
                    floor = bar
        self._admit_floor = floor

    def _refresh_member(
        self, instance: _Instance, new_member: int, weight: float
    ) -> None:
        """A selected seed's influence set grew; update the instance value."""
        if self._modular:
            if new_member not in instance.covered:
                instance.covered.add(new_member)
                instance.value += weight
            else:
                return
        else:
            instance.value = self._func.evaluate(instance.seeds, self._index)
        if instance.value > self._best_value:
            self._offer_solution(instance.value, instance.seeds)

    def _refresh_instances(self) -> None:
        """Keep instances for ``{j : m ≤ (1+β)^j ≤ 2·k·m}``."""
        if self._m <= 0.0:
            return
        low = math.ceil(math.log(self._m) / self._log_base - _EPS)
        high = math.floor(math.log(2 * self._k * self._m) / self._log_base + _EPS)
        if (low, high) == self._bounds:
            return
        self._bounds = (low, high)
        instances = self._instances
        for j in [j for j in instances if j < low or j > high]:
            for seed in instances.pop(j).seeds:
                count = self._member_counts[seed] - 1
                if count:
                    self._member_counts[seed] = count
                else:
                    del self._member_counts[seed]
        base = 1.0 + self._beta
        guess = base ** low
        for j in range(low, high + 1):
            if j not in instances:
                instances[j] = _Instance(guess=guess)
            guess *= base
        self._recompute_admit_floor()

    def _try_admit(self, instance: _Instance, user: int) -> None:
        """Admit ``user`` when its gain reaches ``guess / (2k)``."""
        bar = instance.guess / (2.0 * self._k)
        if self._modular:
            # One C-level set difference yields the uncovered members; with
            # a uniform weight the gain is just its size.
            fresh = self._index.fresh_members(user, instance.covered)
            if not fresh:
                return
            if self._uniform is not None:
                gain = self._uniform * len(fresh)
            else:
                weight = self._func.weight
                gain = sum(weight(v) for v in fresh)
            if gain >= bar and gain > 0.0:
                instance.seeds.add(user)
                instance.covered |= fresh
                instance.value += gain
                self._note_admission(instance, user)
        else:
            with_user = self._func.evaluate(
                list(instance.seeds) + [user], self._index
            )
            gain = with_user - instance.value
            if gain >= bar and gain > 0.0:
                instance.seeds.add(user)
                instance.value = with_user
                self._note_admission(instance, user)

    def _note_admission(self, instance: _Instance, user: int) -> None:
        """Bookkeeping after a successful admission."""
        self._member_counts[user] = self._member_counts.get(user, 0) + 1
        if instance.value > self._best_value:
            self._offer_solution(instance.value, instance.seeds)
        if len(instance.seeds) == self._k:
            # The instance just filled up: it no longer bids for the floor.
            self._recompute_admit_floor()
