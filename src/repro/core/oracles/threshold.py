"""ThresholdStream checkpoint oracle (Kumar et al., TOPC 2015).

The second general-function oracle of Table 2.  Like SieveStreaming it runs
one instance per geometric guess ``v_j = (1+β)^j`` of the optimum, but uses
the simpler *threshold-greedy* admission rule: user ``u`` joins instance
``j`` while ``|CX_j| < k`` whenever its marginal gain is at least

    v_j / (2·k).

An element clearing this bar ``k`` times yields value ≥ ``v_j/2``; combined
with the geometric guessing this gives the same ``(1/2 − β)`` ratio with
``O(log k / β)`` update cost (Table 2).  The admission rule differs from the
sieve rule (which tightens as the instance fills up), making this oracle a
useful ablation partner.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles.base import CheckpointOracle, register_oracle
from repro.influence.functions import InfluenceFunction

__all__ = ["ThresholdStreamOracle"]

_EPS = 1e-9


class _Instance:
    """One guess of OPT with its threshold-greedy candidate solution."""

    __slots__ = ("guess", "seeds", "covered", "value")

    def __init__(self, guess: float):
        self.guess = guess
        self.seeds: Set[int] = set()
        self.covered: Set[int] = set()
        self.value: float = 0.0


@register_oracle("threshold")
class ThresholdStreamOracle(CheckpointOracle):
    """Threshold-greedy SSO adapted to SIM through SSM."""

    ratio_description = "1/2 - beta"

    def __init__(
        self,
        k: int,
        func: InfluenceFunction,
        index: AppendOnlyInfluenceIndex,
        beta: float = 0.1,
    ):
        super().__init__(k=k, func=func, index=index)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self._beta = beta
        self._log_base = math.log1p(beta)
        self._m: float = 0.0
        self._instances: Dict[int, _Instance] = {}
        self._singleton_cache: Dict[int, float] = {}

    @property
    def instance_count(self) -> int:
        """Number of live instances."""
        return len(self._instances)

    def process(self, user: int, new_member: int) -> None:
        if self._func.modular:
            singleton = self._singleton_cache.get(user, 0.0) + self._func.weight(
                new_member
            )
        else:
            singleton = self._func.evaluate((user,), self._index)
        self._singleton_cache[user] = singleton
        if singleton > self._m:
            self._m = singleton
            self._refresh_instances()
        modular = self._func.modular
        weight = self._func.weight(new_member) if modular else 0.0
        best = None
        for instance in self._instances.values():
            if user in instance.seeds:
                if modular:
                    if new_member not in instance.covered:
                        instance.covered.add(new_member)
                        instance.value += weight
                else:
                    instance.value = self._func.evaluate(
                        instance.seeds, self._index
                    )
            elif len(instance.seeds) < self._k:
                self._try_admit(instance, user)
            if best is None or instance.value > best.value:
                best = instance
        self._offer_solution(singleton, (user,))
        if best is not None:
            self._offer_solution(best.value, best.seeds)

    def _refresh_instances(self) -> None:
        """Keep instances for ``{j : m ≤ (1+β)^j ≤ 2·k·m}``."""
        if self._m <= 0.0:
            return
        low = math.ceil(math.log(self._m) / self._log_base - _EPS)
        high = math.floor(math.log(2 * self._k * self._m) / self._log_base + _EPS)
        for j in [j for j in self._instances if j < low or j > high]:
            del self._instances[j]
        for j in range(low, high + 1):
            if j not in self._instances:
                self._instances[j] = _Instance(guess=(1.0 + self._beta) ** j)

    def _try_admit(self, instance: _Instance, user: int) -> None:
        """Admit ``user`` when its gain reaches ``guess / (2k)``."""
        bar = instance.guess / (2.0 * self._k)
        if self._func.modular:
            members = self._index.influence_set(user)
            covered = instance.covered
            weight = self._func.weight
            gain = sum(weight(v) for v in members if v not in covered)
            if gain >= bar and gain > 0.0:
                instance.seeds.add(user)
                covered.update(members)
                instance.value += gain
        else:
            with_user = self._func.evaluate(
                list(instance.seeds) + [user], self._index
            )
            gain = with_user - instance.value
            if gain >= bar and gain > 0.0:
                instance.seeds.add(user)
                instance.value = with_user
