"""Loader for the compiled columnar event kernel (optional fast path).

``_ckernel.c`` is compiled on first use with the system C compiler into a
content-addressed shared object under the temp directory, then loaded via
ctypes.  Everything degrades gracefully: no compiler, a failed build, a
failed load, or ``REPRO_NO_CKERNEL=1`` in the environment all yield
``None``, and :class:`~repro.core.oracles.columnar.ColumnarThresholdKernel`
falls back to its pure-numpy event path (same results, lower throughput).

The build deliberately avoids ``-ffast-math`` and forces
``-ffp-contract=off``: the kernel's contract is bit-identical float
results versus the CPython object plane, and FMA contraction or unsafe
math would silently break that.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["EventCtx", "load", "ENV_DISABLE"]

#: Set this environment variable (to any non-empty value) to force the
#: pure-numpy event path — used by tests to exercise both paths.
ENV_DISABLE = "REPRO_NO_CKERNEL"

_SOURCE = Path(__file__).with_name("_ckernel.c")
_CFLAGS = [
    "-O3",
    "-shared",
    "-fPIC",
    # Exactness: results must match CPython float arithmetic bit-for-bit.
    "-fno-fast-math",
    "-ffp-contract=off",
]

_lib: Optional[ctypes.CDLL] = None
_tried = False


class EventCtx(ctypes.Structure):
    """Mirror of the ``EventCtx`` struct in ``_ckernel.c`` (all 8-byte
    fields, so the layouts agree without explicit packing)."""

    _fields_ = [
        ("cap", ctypes.c_int64),
        ("jcap", ctypes.c_int64),
        ("kcap", ctypes.c_int64),
        ("wcap", ctypes.c_int64),
        ("k", ctypes.c_int64),
        ("bar_mode", ctypes.c_int64),
        ("uniform", ctypes.c_double),
        ("base", ctypes.c_double),
        ("log_base", ctypes.c_double),
    ] + [
        (name, ctypes.c_void_p)
        for name in (
            "m",
            "best",
            "floor_",
            "rthresh",
            "blow",
            "bhigh",
            "starts",
            "ival",
            "ibar",
            "iguess",
            "inseed",
            "iseed_ids",
            "best_ids",
            "best_ns",
            "dirtyf",
            "icov",
            "mem2d",
            "cache2d",
            "lanes",
            "times",
            "skeys",
            "cum",
            "counts",
            "los",
            "freshb",
        )
    ]


def _build(source: Path, out: Path) -> bool:
    tmp = out.with_name(f"{out.name}.{os.getpid()}.tmp")
    cmd = ["cc", *_CFLAGS, "-o", str(tmp), str(source), "-lm"]
    try:
        subprocess.run(
            cmd, check=True, capture_output=True, timeout=120
        )
        os.replace(tmp, out)
        return True
    except (OSError, subprocess.SubprocessError):
        try:
            tmp.unlink()
        except OSError:
            pass
        return False


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, building it on first call.

    Returns ``None`` when disabled or unavailable; the result (either
    way) is cached for the process.
    """
    global _lib, _tried
    if _tried:
        return _lib
    _tried = True
    if os.environ.get(ENV_DISABLE):
        return None
    try:
        source_bytes = _SOURCE.read_bytes()
    except OSError:
        return None
    digest = hashlib.sha256(source_bytes).hexdigest()[:16]
    so_path = Path(tempfile.gettempdir()) / f"repro_ckernel_{digest}.so"
    if not so_path.exists() and not _build(_SOURCE, so_path):
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
        lib.process_event.restype = ctypes.c_int
        lib.process_event.argtypes = [
            ctypes.POINTER(EventCtx),
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
        ]
    except (OSError, AttributeError):
        return None
    _lib = lib
    return _lib
