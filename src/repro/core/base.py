"""Shared plumbing for continuous SIM query processors.

Every algorithm in this library (IC, SIC, windowed greedy, and the adapted
graph baselines) consumes the same inputs: batches of arriving actions that
slide a sequence-based window of size ``N`` by ``L = len(batch)`` positions.
:class:`SIMAlgorithm` centralises the bookkeeping each of them needs —
sliding window, diffusion-forest ancestor resolution, and the parallel
record queue used to report expiries — so that concrete algorithms only
implement :meth:`SIMAlgorithm._on_slide` and :meth:`SIMAlgorithm.query`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, FrozenSet, List, Optional, Sequence

from repro.core.actions import Action
from repro.core.diffusion import ActionRecord, DiffusionForest
from repro.core.resolve import ResolvedSlide
from repro.core.window import SlidingWindow
from repro.telemetry.trace import active_trace

__all__ = [
    "SIMResult",
    "SIMAlgorithm",
    "STATE_FORMAT_VERSION",
    "check_state_header",
]

#: Version tag carried by every serialized algorithm state.  Bump when a
#: state schema changes shape; readers refuse mismatched documents instead
#: of guessing.
STATE_FORMAT_VERSION = 1


def check_state_header(state, algorithm: str) -> None:
    """Validate the format version and algorithm tag of a state document.

    Raises:
        ValueError: when the document's ``format`` is not
            :data:`STATE_FORMAT_VERSION` or its ``algorithm`` tag is not
            ``algorithm``.
    """
    version = state.get("format")
    if version != STATE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported state format version {version!r}; "
            f"this build reads version {STATE_FORMAT_VERSION}"
        )
    kind = state.get("algorithm")
    if kind != algorithm:
        raise ValueError(
            f"state document is for algorithm {kind!r}, expected {algorithm!r}"
        )


@dataclass(frozen=True, slots=True)
class SIMResult:
    """Answer of one SIM query.

    Attributes:
        time: The window end time ``t`` the answer refers to.
        seeds: Selected seed users (at most ``k``).
        value: The algorithm's (approximate) influence value for the seeds.
    """

    time: int
    seeds: FrozenSet[int]
    value: float


class SIMAlgorithm(ABC):
    """Base class for continuous SIM processors over sliding windows."""

    def __init__(
        self,
        window_size: int,
        k: int,
        retention: Optional[int] = None,
    ):
        """
        Args:
            window_size: The paper's ``N``.
            k: Seed-set cardinality constraint.
            retention: Diffusion-forest retention horizon.  Must be at least
                ``window_size`` when provided (expiring actions must still be
                resolvable); defaults to unbounded.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if retention is not None and retention < window_size:
            raise ValueError(
                f"retention ({retention}) must be >= window size ({window_size})"
            )
        self._k = k
        self._window = SlidingWindow(window_size)
        self._forest = DiffusionForest(retention=retention)
        self._window_records: Deque[ActionRecord] = deque()
        self._actions_processed = 0

    # -- public interface ---------------------------------------------------

    @property
    def k(self) -> int:
        """The cardinality constraint."""
        return self._k

    @property
    def window_size(self) -> int:
        """The window capacity ``N``."""
        return self._window.size

    @property
    def now(self) -> int:
        """Timestamp of the latest processed action (0 before any)."""
        return self._window.end_time

    @property
    def actions_processed(self) -> int:
        """Total number of actions consumed."""
        return self._actions_processed

    @property
    def window(self) -> SlidingWindow:
        """The underlying sliding window."""
        return self._window

    @property
    def forest(self) -> DiffusionForest:
        """The shared diffusion forest."""
        return self._forest

    def resolve_slide(self, batch: Sequence[Action]) -> ResolvedSlide:
        """Phase 1 of the two-phase ingest API: forest resolution only.

        Validates stream order against the engine clock, feeds the
        diffusion forest exactly once, and returns the slide's resolved
        influence records — without advancing the window or touching the
        oracles.  Pair each ``resolve_slide`` with exactly one
        :meth:`process`-style application; :meth:`process` composes the
        two for the single-engine path, while the sharded facade
        resolves once and routes the records to :meth:`apply_resolved`
        on each shard.
        """
        batch = list(batch)
        if not batch:
            return ResolvedSlide.empty()
        previous = self.now
        for action in batch:
            if action.time <= previous:
                raise ValueError(
                    f"window received out-of-order action {action.time} "
                    f"after {previous}"
                )
            previous = action.time
        records = tuple(self._forest.add(a) for a in batch)
        return ResolvedSlide(
            start=batch[0].time,
            last=batch[-1].time,
            count=len(batch),
            records=records,
        )

    def apply_resolved(self, resolved: ResolvedSlide) -> None:
        """Phase 2 of the two-phase ingest API: apply pre-resolved records.

        Advances the stream clock to ``resolved.last`` and feeds the
        influence index + oracles from ``resolved.records`` — no raw
        actions needed, no forest walk.  This is the routed-shard entry
        point: the records were resolved elsewhere (the facade's
        :class:`~repro.core.resolve.SlideResolver`) and, for a sharded
        algorithm, must already be narrowed to this shard's influencers
        (projection is idempotent, so sharded subclasses re-project
        defensively).

        Unlike :meth:`process`, the window stores no actions — only the
        clock advances — so ``active_users``/``start_time`` reflect an
        empty window and expiry records are not reported.  IC/SIC never
        consume either; algorithms that do (e.g. the windowed greedy
        baseline) do not support pre-resolved slides.
        """
        if resolved.count == 0:
            return
        if resolved.start <= self.now:
            raise ValueError(
                f"engine received out-of-order slide starting "
                f"{resolved.start} at clock {self.now}"
            )
        trace = active_trace()
        started = perf_counter() if trace is not None else 0.0
        self._window.advance_clock(resolved.last, resolved.count)
        # Drain broadcast-era window records (a shard dir migrated from
        # broadcast ingest restores a populated deque) at slide rate.
        for _ in range(min(resolved.count, len(self._window_records))):
            self._window_records.popleft()
        self._actions_processed += len(resolved.records)
        if trace is not None:
            self._on_slide_resolved(resolved)
            trace.add_stage(
                "oracle", perf_counter() - started, len(resolved.records)
            )
        else:
            self._on_slide_resolved(resolved)

    def process(self, batch: Sequence[Action]) -> None:
        """Slide the window by ``len(batch)`` actions (Section 5.3's ``L``).

        The composed single-engine path of the two-phase ingest API:
        :meth:`resolve_slide` (forest) followed by window bookkeeping and
        the oracle application — with the window keeping the raw actions
        for full state fidelity, which the routed :meth:`apply_resolved`
        path skips.

        When a :class:`~repro.telemetry.SlideTrace` is active on this
        thread (the serving plane's writer), the slide splits into two
        recorded stages: ``forest_index`` (ancestor resolution + window
        bookkeeping) and ``oracle`` (the algorithm's ``_on_slide``).
        Without an active trace the cost is one thread-local lookup.
        """
        if not batch:
            return
        trace = active_trace()
        started = perf_counter() if trace is not None else 0.0
        resolved = self.resolve_slide(batch)
        arrived: List[ActionRecord] = list(resolved.records)
        self._window.slide(batch)
        self._window_records.extend(arrived)
        expired: List[ActionRecord] = []
        while len(self._window_records) > self._window.size:
            expired.append(self._window_records.popleft())
        self._actions_processed += len(batch)
        if trace is not None:
            indexed = perf_counter()
            trace.add_stage("forest_index", indexed - started, len(batch))
            self._on_slide(arrived, expired)
            trace.add_stage("oracle", perf_counter() - indexed, len(batch))
        else:
            self._on_slide(arrived, expired)

    def process_stream(self, batches) -> None:
        """Consume an iterable of batches (see :func:`repro.core.stream.batched`)."""
        for batch in batches:
            self.process(batch)

    @abstractmethod
    def query(self) -> SIMResult:
        """Answer the SIM query for the current window."""

    def query_candidates(self):
        """Seed-merge hook for the sharded read plane (optional).

        Algorithms that can ship exact per-seed coverage return a list of
        ``(user, coverage_frozenset)`` pairs for their current answer —
        the sharded engine's merge-on-read combines those lists across
        shards with exact cross-shard overlap handling (see
        :mod:`repro.sharding.merge`).  The default returns ``None``:
        "no coverage available", which makes the merge fall back to the
        best single shard's answer.
        """
        return None

    # -- persistence ---------------------------------------------------------

    def _base_state(self) -> dict:
        """JSON-safe state of the bookkeeping every SIM algorithm shares.

        Concrete algorithms embed this under ``"base"`` in their
        ``to_state`` document and restore it with :meth:`_restore_base`.
        ``window_records`` are serialized in full (not as references into
        the forest) because a retention horizon may already have pruned
        them from the forest.
        """
        return {
            "window": self._window.to_state(),
            "forest": self._forest.to_state(),
            "window_records": [
                [r.time, r.user, list(r.influencers), r.depth]
                for r in self._window_records
            ],
            "actions_processed": self._actions_processed,
        }

    def _restore_base(self, state: dict) -> None:
        """Restore the shared bookkeeping from :meth:`_base_state` output."""
        self._window = SlidingWindow.from_state(state["window"])
        self._forest = DiffusionForest.from_state(state["forest"])
        self._window_records = deque(
            ActionRecord(
                time=time,
                user=user,
                influencers=tuple(influencers),
                depth=depth,
            )
            for time, user, influencers, depth in state["window_records"]
        )
        self._actions_processed = state["actions_processed"]

    # -- to implement --------------------------------------------------------

    @abstractmethod
    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        """React to one window slide (records are already resolved)."""

    def _on_slide_resolved(self, resolved: ResolvedSlide) -> None:
        """React to one pre-resolved slide (the routed apply path).

        Subclasses that can absorb a slide from resolved records alone —
        IC and SIC, whose checkpoints never look at raw actions — override
        this; the default refuses, so algorithms needing raw actions
        (windowed greedy, graph baselines) fail loudly instead of
        silently diverging.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support pre-resolved slides; "
            "use process() (the composed resolve+apply path)"
        )
