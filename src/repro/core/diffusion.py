"""Diffusion forest: resolving who influences whom along response chains.

Section 3 of the paper defines influence through action propagation: user
``u`` influences user ``v`` in window ``W_t`` iff ``v`` performed an action
``a`` inside ``W_t`` that was *directly or indirectly* triggered by an action
of ``u`` (that triggering action need not lie in the window).  Every action
therefore credits its performer to the influence sets of

* the performer itself (performing an action makes a user "active", and in
  Example 1 ``u1 ∈ I_8(u1)`` because ``u1`` performed ``a_1`` and ``a_6``), and
* the users of *all ancestor actions* along the response chain.

The :class:`DiffusionForest` stores one compact record per action — the
performer plus the de-duplicated tuple of influencer users — so that the
ancestor chain is resolved exactly once per arriving action and then shared
by every framework component (window index, all checkpoints).  The paper's
``d`` (number of influence-set updates per action, Table 3's "Avg. depth"
driver) equals ``len(record.influencers)``.

Records are retained beyond window expiry because late responders may still
reference old actions.  An optional ``retention`` horizon bounds memory on
unbounded streams: records older than ``now - retention`` are dropped and any
later response to a dropped action is treated as a root (its chain is
truncated).  This is exact whenever ``retention`` is at least the maximum
response distance of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.actions import Action

__all__ = ["ActionRecord", "DiffusionForest"]


@dataclass(frozen=True, slots=True)
class ActionRecord:
    """Resolved diffusion metadata for one action.

    Attributes:
        time: The action's timestamp/id.
        user: The performing user.
        influencers: De-duplicated users whose influence sets gain ``user``
            thanks to this action — ancestor-chain users first (root to
            parent), then the performer.  Never empty.
        depth: Length of the response chain including this action (a root
            action has depth 1).
    """

    time: int
    user: int
    influencers: Tuple[int, ...]
    depth: int

    @property
    def fanout(self) -> int:
        """The paper's ``d``: how many influence sets this action updates."""
        return len(self.influencers)


class DiffusionForest:
    """Incremental ancestor resolution over a social action stream.

    Feed every arriving action exactly once via :meth:`add`; look up the
    resulting :class:`ActionRecord` at any later point (e.g. when the same
    action expires from a sliding window) via :meth:`record`.
    """

    def __init__(self, retention: Optional[int] = None):
        """
        Args:
            retention: If given, :meth:`add` automatically forgets records
                older than ``action.time - retention``.  ``None`` keeps all.
        """
        if retention is not None and retention <= 0:
            raise ValueError(f"retention must be positive, got {retention}")
        self._retention = retention
        self._records: Dict[int, ActionRecord] = {}
        self._oldest: int = 1  # smallest time that may still be stored
        # Aggregate statistics (used by datasets.stats for Table 3).
        self._count: int = 0
        self._depth_sum: int = 0
        self._max_depth: int = 0
        self._truncated: int = 0

    def add(self, action: Action) -> ActionRecord:
        """Resolve and store the record for an arriving action."""
        if action.time in self._records:
            raise ValueError(f"action {action.time} was already added")
        parent_record = None
        if not action.is_root:
            parent_record = self._records.get(action.parent)
            if parent_record is None:
                # The parent fell outside the retention horizon: the chain
                # is truncated and the action behaves like a root.
                self._truncated += 1
        if parent_record is None:
            influencers: Tuple[int, ...] = (action.user,)
            depth = 1
        else:
            chain = list(parent_record.influencers)
            if action.user in chain:
                chain.remove(action.user)
            chain.append(action.user)
            influencers = tuple(chain)
            depth = parent_record.depth + 1
        record = ActionRecord(
            time=action.time,
            user=action.user,
            influencers=influencers,
            depth=depth,
        )
        self._records[action.time] = record
        self._count += 1
        self._depth_sum += depth
        self._max_depth = max(self._max_depth, depth)
        if self._retention is not None:
            self.prune_before(action.time - self._retention)
        return record

    def record(self, time: int) -> ActionRecord:
        """Return the stored record for action id ``time``.

        Raises:
            KeyError: if the action was never added or has been pruned.
        """
        return self._records[time]

    def __contains__(self, time: int) -> bool:
        return time in self._records

    def __len__(self) -> int:
        return len(self._records)

    def prune_before(self, time: int) -> int:
        """Drop records with timestamp < ``time``; return how many."""
        if time <= self._oldest:
            return 0
        span = time - self._oldest
        if span <= 2 * len(self._records):
            # Contiguous case (the incremental path): walk the gap.
            dropped = 0
            for t in range(self._oldest, time):
                if self._records.pop(t, None) is not None:
                    dropped += 1
        else:
            # Sparse case: rebuilding is cheaper than walking the gap.
            before = len(self._records)
            self._records = {
                t: record for t, record in self._records.items() if t >= time
            }
            dropped = before - len(self._records)
        self._oldest = time
        return dropped

    # -- statistics ------------------------------------------------------

    @property
    def actions_seen(self) -> int:
        """Total number of actions ever added (not just retained)."""
        return self._count

    @property
    def mean_depth(self) -> float:
        """Average response-chain depth over all actions seen (Table 3)."""
        if self._count == 0:
            return 0.0
        return self._depth_sum / self._count

    @property
    def max_depth(self) -> int:
        """Deepest response chain observed."""
        return self._max_depth

    @property
    def truncated_chains(self) -> int:
        """Responses whose parent had been pruned (treated as roots)."""
        return self._truncated

    def records_between(self, start: int, end: int) -> Iterable[ActionRecord]:
        """Yield retained records with ``start <= time <= end`` in order."""
        for t in range(max(start, self._oldest), end + 1):
            record = self._records.get(t)
            if record is not None:
                yield record

    # -- persistence -----------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state: retained records plus the statistics."""
        return {
            "retention": self._retention,
            "oldest": self._oldest,
            "count": self._count,
            "depth_sum": self._depth_sum,
            "max_depth": self._max_depth,
            "truncated": self._truncated,
            "records": [
                [r.time, r.user, list(r.influencers), r.depth]
                for r in self._records.values()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "DiffusionForest":
        """Rebuild a forest from :meth:`to_state` output."""
        forest = cls(retention=state["retention"])
        forest._oldest = state["oldest"]
        forest._count = state["count"]
        forest._depth_sum = state["depth_sum"]
        forest._max_depth = state["max_depth"]
        forest._truncated = state["truncated"]
        for time, user, influencers, depth in state["records"]:
            forest._records[time] = ActionRecord(
                time=time,
                user=user,
                influencers=tuple(influencers),
                depth=depth,
            )
        return forest
