"""Sequence-based sliding window over a social action stream.

The paper adopts the sequence-based sliding-window model of Datar et al.
(Section 3): ``W_t`` always contains the latest ``N`` actions
``{a_{t-N+1}, ..., a_t}``.  :class:`SlidingWindow` performs the deque
bookkeeping shared by every SIM algorithm: push arrivals, report expiries,
expose the active-user set ``A_t`` and the window boundaries.

Batch slides of ``L > 1`` actions (Section 5.3) are supported by passing a
batch of actions to :meth:`SlidingWindow.slide`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Sequence, Set

from repro.core.actions import Action

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """The latest ``N`` actions of a stream, with expiry reporting."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self._size = size
        self._window: Deque[Action] = deque()
        self._user_counts: dict = {}
        self._last_time: int = 0

    @property
    def size(self) -> int:
        """The window capacity ``N``."""
        return self._size

    def __len__(self) -> int:
        return len(self._window)

    @property
    def is_full(self) -> bool:
        """True once ``N`` actions have been observed."""
        return len(self._window) == self._size

    @property
    def start_time(self) -> int:
        """Timestamp of the oldest retained action (``t - N + 1`` when full).

        Returns 0 for an empty window.
        """
        return self._window[0].time if self._window else 0

    @property
    def end_time(self) -> int:
        """The stream clock ``t``: newest observed timestamp; 0 initially.

        Equal to the newest retained action's timestamp after a
        :meth:`slide`; a window advanced with :meth:`advance_clock`
        (routed shards, which never store raw actions) keeps an accurate
        clock even while empty.
        """
        return self._last_time

    def advance_clock(self, last_time: int, count: int) -> None:
        """Advance the stream clock without storing the slide's actions.

        Routed shards receive pre-resolved influence records instead of
        raw actions: the window then tracks only the clock, and any
        actions still stored (restored from a broadcast-era snapshot)
        drain as if the slide had expired them.

        Args:
            last_time: The slide's final timestamp (the new clock).
            count: Number of actions in the slide (how many stored
                actions to drain).
        """
        if last_time <= self._last_time:
            raise ValueError(
                f"window received out-of-order slide ending {last_time} "
                f"after {self._last_time}"
            )
        self._last_time = last_time
        for _ in range(min(count, len(self._window))):
            old = self._window.popleft()
            remaining = self._user_counts[old.user] - 1
            if remaining:
                self._user_counts[old.user] = remaining
            else:
                del self._user_counts[old.user]

    def slide(self, arrivals: Sequence[Action]) -> List[Action]:
        """Append ``arrivals`` and return the actions that expired.

        Arrivals must continue the stream (strictly increasing timestamps).
        For a full window, sliding by ``L`` arrivals expires exactly the
        oldest ``L`` actions.
        """
        expired: List[Action] = []
        for action in arrivals:
            if action.time <= self._last_time:
                raise ValueError(
                    f"window received out-of-order action {action.time} "
                    f"after {self._last_time}"
                )
            self._last_time = action.time
            self._window.append(action)
            self._user_counts[action.user] = self._user_counts.get(action.user, 0) + 1
            if len(self._window) > self._size:
                old = self._window.popleft()
                remaining = self._user_counts[old.user] - 1
                if remaining:
                    self._user_counts[old.user] = remaining
                else:
                    del self._user_counts[old.user]
                expired.append(old)
        return expired

    @property
    def active_users(self) -> Set[int]:
        """The paper's ``A_t``: users performing at least one window action."""
        return set(self._user_counts)

    def to_state(self) -> dict:
        """Explicit JSON-safe state: capacity, clock, and retained actions."""
        return {
            "size": self._size,
            "last_time": self._last_time,
            "actions": [[a.time, a.user, a.parent] for a in self._window],
        }

    @classmethod
    def from_state(cls, state: dict) -> "SlidingWindow":
        """Rebuild a window from :meth:`to_state` output."""
        window = cls(state["size"])
        window._last_time = state["last_time"]
        for time, user, parent in state["actions"]:
            action = Action(time=time, user=user, parent=parent)
            window._window.append(action)
            window._user_counts[action.user] = (
                window._user_counts.get(action.user, 0) + 1
            )
        return window

    def activity(self, user: int) -> int:
        """Number of window actions performed by ``user``."""
        return self._user_counts.get(user, 0)

    def __iter__(self) -> Iterable[Action]:
        return iter(self._window)

    def __getitem__(self, i: int) -> Action:
        """``W_t[i]`` with the paper's 1-based indexing."""
        if not 1 <= i <= len(self._window):
            raise IndexError(f"window position {i} out of [1, {len(self._window)}]")
        return self._window[i - 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindow(size={self._size}, len={len(self._window)}, "
            f"span=[{self.start_time}, {self.end_time}])"
        )
