"""Social actions: the atomic events of a social stream.

The paper (Section 3) models a social stream as an unbounded, time-sequenced
series of *actions* ``a_t = <u, a_t'>_t``: user ``u`` performs an action at
time ``t`` in response to an earlier action ``a_t'`` (``t' < t``).  An action
with no parent (an original post/tweet) is a *root action* ``<u, nil>_t``.

Timestamps double as action identifiers because the stream is sequence-based:
the ``t``-th arrival has timestamp ``t``.  This mirrors the paper's
``W_t = {a_{t-N+1}, ..., a_t}`` indexing and keeps bookkeeping integer-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Action", "ROOT"]

#: Sentinel parent id marking a root action (the paper's ``nil``).
ROOT: int = -1


@dataclass(frozen=True, slots=True)
class Action:
    """One social action ``a_t = <user, parent>_t``.

    Attributes:
        time: Arrival timestamp; also the action's unique id.  Strictly
            increasing along a stream, starting from 1 (matching Example 1
            of the paper where the first action is ``a_1``).
        user: Id of the user who performed the action.
        parent: Timestamp/id of the action being responded to, or
            :data:`ROOT` for a root action.
    """

    time: int
    user: int
    parent: int = ROOT

    def __post_init__(self) -> None:
        if self.time <= 0:
            raise ValueError(f"action time must be positive, got {self.time}")
        if self.user < 0:
            raise ValueError(f"user id must be non-negative, got {self.user}")
        if self.parent != ROOT and not 0 < self.parent < self.time:
            raise ValueError(
                f"parent must be an earlier action id in (0, {self.time}) "
                f"or ROOT, got {self.parent}"
            )

    @property
    def is_root(self) -> bool:
        """True when this action does not respond to any earlier action."""
        return self.parent == ROOT

    @property
    def response_distance(self) -> Optional[int]:
        """The paper's response distance ``Δ = t - t'``; None for roots."""
        if self.is_root:
            return None
        return self.time - self.parent

    @classmethod
    def root(cls, time: int, user: int) -> "Action":
        """Create a root action ``<user, nil>_time``."""
        return cls(time=time, user=user, parent=ROOT)

    @classmethod
    def response(cls, time: int, user: int, parent: int) -> "Action":
        """Create a response action ``<user, a_parent>_time``."""
        return cls(time=time, user=user, parent=parent)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        target = "nil" if self.is_root else f"a{self.parent}"
        return f"<u{self.user}, {target}>_{self.time}"
