"""Influence-set indexes: the paper's ``I_t(u)`` materialised.

Two variants are needed:

* :class:`WindowInfluenceIndex` — the *exact* influence sets with respect to
  the current sliding window ``W_t`` (Definition 1).  It supports removal,
  because influence contributed by an action disappears when that action
  expires from the window.  Contributions are reference-counted per
  ``(influencer, influenced)`` pair: ``v ∈ I_t(u)`` iff at least one window
  action performed by ``v`` credits ``u`` (Example 1: ``u1`` still influences
  ``u3`` in ``W_10`` through ``a_4`` even after ``a_1`` expired).

* :class:`AppendOnlyInfluenceIndex` — the influence sets ``I_t[i](u)`` over
  the *suffix* of actions covered by one checkpoint (Section 4.2).  Sets only
  grow, which is exactly what lets SSM reuse append-only SSO oracles.

Both indexes work on :class:`~repro.core.diffusion.ActionRecord` inputs:
``record.user`` is the influenced performer and ``record.influencers`` lists
the users credited.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Set

from repro.core.diffusion import ActionRecord

__all__ = ["WindowInfluenceIndex", "AppendOnlyInfluenceIndex"]


class WindowInfluenceIndex:
    """Exact windowed influence sets with reference-counted expiry."""

    def __init__(self) -> None:
        self._pair_counts: Dict[int, Dict[int, int]] = {}
        self._influence: Dict[int, Set[int]] = {}

    def add(self, record: ActionRecord) -> None:
        """Account for an arriving action."""
        v = record.user
        for u in record.influencers:
            counts = self._pair_counts.setdefault(u, {})
            counts[v] = counts.get(v, 0) + 1
            if counts[v] == 1:
                self._influence.setdefault(u, set()).add(v)

    def remove(self, record: ActionRecord) -> None:
        """Account for an expiring action (must have been added before)."""
        v = record.user
        for u in record.influencers:
            counts = self._pair_counts.get(u)
            if counts is None or v not in counts:
                raise KeyError(
                    f"cannot expire pair ({u} -> {v}): it was never added"
                )
            counts[v] -= 1
            if counts[v] == 0:
                del counts[v]
                members = self._influence[u]
                members.discard(v)
                if not members:
                    del self._influence[u]
                if not counts:
                    del self._pair_counts[u]

    def influence_set(self, user: int) -> FrozenSet[int]:
        """``I_t(user)`` — empty when the user influences nobody."""
        members = self._influence.get(user)
        return frozenset(members) if members else frozenset()

    def coverage(self, seeds) -> Set[int]:
        """``I_t(S) = ∪_{u∈S} I_t(u)`` for a seed iterable ``S``."""
        covered: Set[int] = set()
        for u in seeds:
            members = self._influence.get(u)
            if members:
                covered.update(members)
        return covered

    def influencers(self) -> Iterator[int]:
        """Users with a non-empty influence set in the current window."""
        return iter(self._influence)

    def __contains__(self, user: int) -> bool:
        return user in self._influence

    def __len__(self) -> int:
        """Number of users with non-empty influence sets."""
        return len(self._influence)

    def pair_count(self) -> int:
        """Total number of distinct ``(u, v)`` influence pairs."""
        return sum(len(members) for members in self._influence.values())

    def edges(self) -> Iterator[tuple]:
        """Yield ``(u, v, multiplicity)`` influence pairs (``u`` may equal ``v``)."""
        for u, counts in self._pair_counts.items():
            for v, count in counts.items():
                yield u, v, count


class AppendOnlyInfluenceIndex:
    """Grow-only influence sets for one checkpoint's action suffix."""

    __slots__ = ("_influence",)

    def __init__(self) -> None:
        self._influence: Dict[int, Set[int]] = {}

    def add(self, record: ActionRecord) -> list:
        """Account for an arriving action.

        Returns the list of influencer users whose set actually gained a new
        member — exactly the users SSM must re-feed to the oracle.
        """
        v = record.user
        updated = []
        for u in record.influencers:
            members = self._influence.setdefault(u, set())
            if v not in members:
                members.add(v)
                updated.append(u)
        return updated

    def influence_set(self, user: int) -> Set[int]:
        """``I_t[i](user)`` — a live (do not mutate) set view."""
        return self._influence.get(user, set())

    def coverage(self, seeds) -> Set[int]:
        """Union of the influence sets of ``seeds``."""
        covered: Set[int] = set()
        for u in seeds:
            covered.update(self._influence.get(u, ()))
        return covered

    def __contains__(self, user: int) -> bool:
        return user in self._influence

    def __len__(self) -> int:
        return len(self._influence)
