"""Influence-set indexes: the paper's ``I_t(u)`` materialised.

Three variants are needed:

* :class:`WindowInfluenceIndex` — the *exact* influence sets with respect to
  the current sliding window ``W_t`` (Definition 1).  It supports removal,
  because influence contributed by an action disappears when that action
  expires from the window.  Contributions are reference-counted per
  ``(influencer, influenced)`` pair: ``v ∈ I_t(u)`` iff at least one window
  action performed by ``v`` credits ``u`` (Example 1: ``u1`` still influences
  ``u3`` in ``W_10`` through ``a_4`` even after ``a_1`` expired).

* :class:`AppendOnlyInfluenceIndex` — the influence sets ``I_t[i](u)`` over
  the *suffix* of actions covered by one checkpoint (Section 4.2).  Sets only
  grow, which is exactly what lets SSM reuse append-only SSO oracles.  Since
  the shared index below landed, this is the *reference implementation*:
  standalone checkpoints and the equivalence tests use it, the IC/SIC hot
  path does not.

* :class:`VersionedInfluenceIndex` — **one** shared structure replacing the
  ⌈N/L⌉ per-checkpoint copies of :class:`AppendOnlyInfluenceIndex`.  For
  each influence pair ``(u, v)`` it stores only the *latest crediting action
  time*; checkpoint ``Λ_t[i]``'s suffix set is recovered as

      ``I_t[i](u) = {v : latest(u, v) ≥ start_i}``

  through lightweight :class:`SuffixView` objects that satisfy the same
  ``influence_set``/``coverage`` protocol oracles already consume.  On each
  pair update the previous ``latest`` tells the caller exactly which
  checkpoints gained a *new* member — those whose start exceeds it — so
  per-action index work drops from O(d · N/L) set probes to O(d) dict
  writes plus the oracle feeds that were necessary anyway, and index memory
  drops from the sum of all suffix sizes to the number of distinct pairs.

All indexes work on :class:`~repro.core.diffusion.ActionRecord` inputs:
``record.user`` is the influenced performer and ``record.influencers`` lists
the users credited.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.core.diffusion import ActionRecord

__all__ = [
    "WindowInfluenceIndex",
    "AppendOnlyInfluenceIndex",
    "VersionedInfluenceIndex",
    "SuffixView",
]

#: Shared result for empty influence-set queries (never cached per user).
_EMPTY_FROZENSET: FrozenSet[int] = frozenset()


class WindowInfluenceIndex:
    """Exact windowed influence sets with reference-counted expiry."""

    def __init__(self) -> None:
        self._pair_counts: Dict[int, Dict[int, int]] = {}
        self._influence: Dict[int, Set[int]] = {}
        # Memoised frozenset per user, dropped whenever that user's set
        # actually changes (multiplicity-only updates keep it valid).
        self._frozen: Dict[int, FrozenSet[int]] = {}

    def add(self, record: ActionRecord) -> None:
        """Account for an arriving action."""
        v = record.user
        for u in record.influencers:
            counts = self._pair_counts.setdefault(u, {})
            counts[v] = counts.get(v, 0) + 1
            if counts[v] == 1:
                self._influence.setdefault(u, set()).add(v)
                self._frozen.pop(u, None)

    def remove(self, record: ActionRecord) -> None:
        """Account for an expiring action (must have been added before)."""
        v = record.user
        for u in record.influencers:
            counts = self._pair_counts.get(u)
            if counts is None or v not in counts:
                raise KeyError(
                    f"cannot expire pair ({u} -> {v}): it was never added"
                )
            counts[v] -= 1
            if counts[v] == 0:
                del counts[v]
                self._frozen.pop(u, None)
                members = self._influence[u]
                members.discard(v)
                if not members:
                    del self._influence[u]
                if not counts:
                    del self._pair_counts[u]

    def influence_set(self, user: int) -> FrozenSet[int]:
        """``I_t(user)`` — empty when the user influences nobody.

        The returned frozenset is cached until the user's set next changes,
        so repeated reads between mutations cost O(1) instead of a copy.
        Empty results share one singleton and are never cached, so queries
        for absent users cannot grow the cache.
        """
        cached = self._frozen.get(user)
        if cached is not None:
            return cached
        members = self._influence.get(user)
        if not members:
            return _EMPTY_FROZENSET
        frozen = frozenset(members)
        self._frozen[user] = frozen
        return frozen

    def coverage(self, seeds) -> Set[int]:
        """``I_t(S) = ∪_{u∈S} I_t(u)`` for a seed iterable ``S``."""
        covered: Set[int] = set()
        for u in seeds:
            members = self._influence.get(u)
            if members:
                covered.update(members)
        return covered

    def influencers(self) -> Iterator[int]:
        """Users with a non-empty influence set in the current window."""
        return iter(self._influence)

    def __contains__(self, user: int) -> bool:
        return user in self._influence

    def __len__(self) -> int:
        """Number of users with non-empty influence sets."""
        return len(self._influence)

    def pair_count(self) -> int:
        """Total number of distinct ``(u, v)`` influence pairs."""
        return sum(len(members) for members in self._influence.values())

    def edges(self) -> Iterator[tuple]:
        """Yield ``(u, v, multiplicity)`` influence pairs (``u`` may equal ``v``)."""
        for u, counts in self._pair_counts.items():
            for v, count in counts.items():
                yield u, v, count

    def to_state(self) -> dict:
        """Explicit JSON-safe state (pair multiplicities, order-preserving).

        Dict iteration order is part of the state: ``influencers()`` feeds
        greedy candidate lists whose order breaks ties, so the rebuilt
        index must iterate exactly like the live one.
        """
        return {
            "pairs": [
                [u, [[v, count] for v, count in counts.items()]]
                for u, counts in self._pair_counts.items()
            ]
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowInfluenceIndex":
        """Rebuild an index from :meth:`to_state` output."""
        index = cls()
        for u, counts in state["pairs"]:
            index._pair_counts[u] = {v: count for v, count in counts}
            index._influence[u] = {v for v, _count in counts}
        return index


class AppendOnlyInfluenceIndex:
    """Grow-only influence sets for one checkpoint's action suffix."""

    __slots__ = ("_influence",)

    def __init__(self) -> None:
        self._influence: Dict[int, Set[int]] = {}

    def add(self, record: ActionRecord) -> list:
        """Account for an arriving action.

        Returns the list of influencer users whose set actually gained a new
        member — exactly the users SSM must re-feed to the oracle.
        """
        v = record.user
        updated = []
        for u in record.influencers:
            members = self._influence.setdefault(u, set())
            if v not in members:
                members.add(v)
                updated.append(u)
        return updated

    def influence_set(self, user: int) -> Set[int]:
        """``I_t[i](user)`` — a live (do not mutate) set view."""
        return self._influence.get(user, set())

    def fresh_members(self, user: int, covered) -> Set[int]:
        """``I_t[i](user) − covered`` — the members an admission would gain."""
        members = self._influence.get(user)
        return members - covered if members else set()

    def coverage(self, seeds) -> Set[int]:
        """Union of the influence sets of ``seeds``."""
        covered: Set[int] = set()
        for u in seeds:
            covered.update(self._influence.get(u, ()))
        return covered

    def __contains__(self, user: int) -> bool:
        return user in self._influence

    def __len__(self) -> int:
        return len(self._influence)

    def to_state(self) -> dict:
        """Explicit JSON-safe state: the grow-only suffix sets."""
        return {
            "influence": [
                [u, sorted(members)] for u, members in self._influence.items()
            ]
        }

    @classmethod
    def from_state(cls, state: dict) -> "AppendOnlyInfluenceIndex":
        """Rebuild an index from :meth:`to_state` output."""
        index = cls()
        for u, members in state["influence"]:
            index._influence[u] = set(members)
        return index


class VersionedInfluenceIndex:
    """Latest-credit influence pairs shared by every live checkpoint.

    The structure is a two-level dict ``u -> {v -> latest}`` where
    ``latest`` is the timestamp of the most recent action by ``v`` crediting
    ``u``.  Because checkpoint suffixes are nested (they differ only in
    their start time), this single map answers every checkpoint's
    ``I_t[i](u)`` exactly: a pair is in checkpoint ``i``'s set iff its
    latest credit is no older than the checkpoint's start.

    :meth:`add` returns, per influencer, the *previous* latest credit time
    (0 for never-seen pairs); the caller dispatches oracle feeds to exactly
    the checkpoints whose start exceeds it — a ``bisect`` over the sorted
    checkpoint starts instead of probing every checkpoint.

    Pairs whose latest credit predates every live checkpoint are invisible
    and reclaimed by :meth:`compact` with an amortised-O(1) doubling policy,
    so steady-state memory is O(distinct visible pairs), independent of the
    checkpoint count.
    """

    __slots__ = ("_latest", "_pair_total", "_floor", "_live_at_sweep")

    #: Sweep only once the index has doubled since the last sweep (with a
    #: small absolute floor so tiny streams never bother).
    _MIN_SWEEP_PAIRS = 64

    def __init__(self) -> None:
        self._latest: Dict[int, Dict[int, int]] = {}
        self._pair_total = 0
        # Every stored latest is >= _floor; a view whose start is <= _floor
        # therefore sees the *full* pair map of a user (fast path).
        self._floor = 0
        self._live_at_sweep = 0

    def add(self, record: ActionRecord) -> List[Tuple[int, int]]:
        """Record one arriving action in O(d) dict writes.

        Returns ``[(influencer, previous_latest), ...]`` in influencer
        order, ``previous_latest`` being 0 when the pair was never credited
        before.  A checkpoint gains a new member for the pair exactly when
        its start exceeds ``previous_latest``.
        """
        v = record.user
        time = record.time
        latest = self._latest
        updates: List[Tuple[int, int]] = []
        for u in record.influencers:
            pairs = latest.get(u)
            if pairs is None:
                latest[u] = {v: time}
                self._pair_total += 1
                updates.append((u, 0))
                continue
            old = pairs.get(v, 0)
            pairs[v] = time
            if old == 0:
                self._pair_total += 1
            updates.append((u, old))
        return updates

    def add_batch(
        self, records: Sequence[ActionRecord]
    ) -> List[Tuple[int, int, int]]:
        """Record a whole slide; return flat ``(performer, influencer, previous)``.

        Equivalent to calling :meth:`add` per record, but returns one flat
        update list for the slide — the shape the batched dispatch plane
        consumes — with the per-record temporaries and attribute lookups
        hoisted out of the loop.  Updates keep record order, then
        influencer order within a record.
        """
        latest = self._latest
        updates: List[Tuple[int, int, int]] = []
        append = updates.append
        for record in records:
            v = record.user
            time = record.time
            for u in record.influencers:
                pairs = latest.get(u)
                if pairs is None:
                    latest[u] = {v: time}
                    self._pair_total += 1
                    append((v, u, 0))
                    continue
                old = pairs.get(v, 0)
                pairs[v] = time
                if old == 0:
                    self._pair_total += 1
                append((v, u, old))
        return updates

    def view(self, start: int) -> "SuffixView":
        """A read-only ``I_t[i]`` facade for the suffix starting at ``start``."""
        return SuffixView(self, start)

    def latest(self, influencer: int, influenced: int) -> int:
        """Latest credit time of the pair, or 0 when never credited."""
        pairs = self._latest.get(influencer)
        return pairs.get(influenced, 0) if pairs else 0

    def compact(self, cutoff: int, force: bool = False) -> int:
        """Reclaim pairs invisible to every checkpoint (latest < ``cutoff``).

        A full sweep costs O(pairs), so unless ``force`` is set it only runs
        once the stored pair count has doubled since the previous sweep —
        amortised O(1) per :meth:`add` while bounding memory to twice the
        visible pairs.  Returns the number of pairs dropped.
        """
        if cutoff <= self._floor:
            return 0
        if not force and self._pair_total < max(
            self._MIN_SWEEP_PAIRS, 2 * self._live_at_sweep
        ):
            return 0
        dropped = 0
        latest = self._latest
        for u in list(latest):
            pairs = latest[u]
            stale = [v for v, t in pairs.items() if t < cutoff]
            for v in stale:
                del pairs[v]
            dropped += len(stale)
            if not pairs:
                del latest[u]
        self._pair_total -= dropped
        self._floor = cutoff
        self._live_at_sweep = self._pair_total
        return dropped

    def to_state(self) -> dict:
        """Explicit JSON-safe state (latest-credit pairs, order-preserving).

        Per-user pair order is part of the state: ``SuffixView`` methods
        build fresh sets by iterating these dicts, and downstream float
        accumulation (weighted/non-modular functions) follows that order,
        so the rebuilt index must iterate exactly like the live one.
        """
        return {
            "floor": self._floor,
            "live_at_sweep": self._live_at_sweep,
            "pairs": [
                [u, [[v, t] for v, t in pairs.items()]]
                for u, pairs in self._latest.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "VersionedInfluenceIndex":
        """Rebuild an index from :meth:`to_state` output."""
        index = cls()
        index._floor = state["floor"]
        index._live_at_sweep = state["live_at_sweep"]
        total = 0
        for u, pairs in state["pairs"]:
            index._latest[u] = {v: t for v, t in pairs}
            total += len(pairs)
        index._pair_total = total
        return index

    @property
    def floor(self) -> int:
        """Every stored pair's latest credit is at least this time."""
        return self._floor

    @property
    def user_count(self) -> int:
        """Users with at least one stored pair."""
        return len(self._latest)

    @property
    def pair_count(self) -> int:
        """Distinct stored ``(u, v)`` pairs — the index's physical size."""
        return self._pair_total

    def __contains__(self, user: int) -> bool:
        return user in self._latest

    def __len__(self) -> int:
        """Number of users with at least one stored pair."""
        return len(self._latest)


class SuffixView:
    """One checkpoint's read-only ``I_t[i]`` over the shared index.

    Satisfies the ``influence_set``/``coverage`` protocol that oracles and
    influence functions consume, by filtering the shared pair map against
    the checkpoint's start time.  Views hold no per-checkpoint state, so a
    live checkpoint costs O(1) index memory.
    """

    __slots__ = ("_index", "start")

    def __init__(self, index: VersionedInfluenceIndex, start: int):
        if start <= 0:
            raise ValueError(f"suffix start must be positive, got {start}")
        self._index = index
        #: The checkpoint's start time (pairs credited earlier are hidden).
        self.start = start

    def influence_set(self, user: int) -> Set[int]:
        """``I_t[i](user)``: pairs credited at or after the view's start."""
        pairs = self._index._latest.get(user)
        if not pairs:
            return set()
        start = self.start
        if start <= self._index._floor:
            return set(pairs)
        return {v for v, t in pairs.items() if t >= start}

    def fresh_members(self, user: int, covered) -> Set[int]:
        """``I_t[i](user) − covered`` in one pass (the admission hot path)."""
        pairs = self._index._latest.get(user)
        if not pairs:
            return set()
        start = self.start
        if start <= self._index._floor:
            # Dict keys are a set view: the difference runs at C level.
            return pairs.keys() - covered
        return {
            v for v, t in pairs.items() if t >= start and v not in covered
        }

    def coverage(self, seeds) -> Set[int]:
        """Union of the influence sets of ``seeds``."""
        latest = self._index._latest
        start = self.start
        full = start <= self._index._floor
        covered: Set[int] = set()
        for u in seeds:
            pairs = latest.get(u)
            if not pairs:
                continue
            if full:
                covered.update(pairs)
            else:
                covered.update(v for v, t in pairs.items() if t >= start)
        return covered

    def __contains__(self, user: int) -> bool:
        pairs = self._index._latest.get(user)
        if not pairs:
            return False
        start = self.start
        if start <= self._index._floor:
            return True
        return any(t >= start for t in pairs.values())

    def __len__(self) -> int:
        """Number of users with a non-empty suffix influence set."""
        latest = self._index._latest
        start = self.start
        if start <= self._index._floor:
            return len(latest)
        return sum(
            1
            for pairs in latest.values()
            if any(t >= start for t in pairs.values())
        )
