"""Influence-set indexes: the paper's ``I_t(u)`` materialised.

Three variants are needed:

* :class:`WindowInfluenceIndex` — the *exact* influence sets with respect to
  the current sliding window ``W_t`` (Definition 1).  It supports removal,
  because influence contributed by an action disappears when that action
  expires from the window.  Contributions are reference-counted per
  ``(influencer, influenced)`` pair: ``v ∈ I_t(u)`` iff at least one window
  action performed by ``v`` credits ``u`` (Example 1: ``u1`` still influences
  ``u3`` in ``W_10`` through ``a_4`` even after ``a_1`` expired).

* :class:`AppendOnlyInfluenceIndex` — the influence sets ``I_t[i](u)`` over
  the *suffix* of actions covered by one checkpoint (Section 4.2).  Sets only
  grow, which is exactly what lets SSM reuse append-only SSO oracles.  Since
  the shared index below landed, this is the *reference implementation*:
  standalone checkpoints and the equivalence tests use it, the IC/SIC hot
  path does not.

* :class:`VersionedInfluenceIndex` — **one** shared structure replacing the
  ⌈N/L⌉ per-checkpoint copies of :class:`AppendOnlyInfluenceIndex`.  For
  each influence pair ``(u, v)`` it stores only the *latest crediting action
  time*; checkpoint ``Λ_t[i]``'s suffix set is recovered as

      ``I_t[i](u) = {v : latest(u, v) ≥ start_i}``

  through lightweight :class:`SuffixView` objects that satisfy the same
  ``influence_set``/``coverage`` protocol oracles already consume.  On each
  pair update the previous ``latest`` tells the caller exactly which
  checkpoints gained a *new* member — those whose start exceeds it — so
  per-action index work drops from O(d · N/L) set probes to O(d) dict
  writes plus the oracle feeds that were necessary anyway, and index memory
  drops from the sum of all suffix sizes to the number of distinct pairs.

All indexes work on :class:`~repro.core.diffusion.ActionRecord` inputs:
``record.user`` is the influenced performer and ``record.influencers`` lists
the users credited.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.diffusion import ActionRecord

try:  # Cold-pair spill is array-backed; without numpy it simply stays off.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

__all__ = [
    "WindowInfluenceIndex",
    "AppendOnlyInfluenceIndex",
    "VersionedInfluenceIndex",
    "SuffixView",
]

#: Shared result for empty influence-set queries (never cached per user).
_EMPTY_FROZENSET: FrozenSet[int] = frozenset()


def _by_credit_time(item: Tuple[int, int]) -> int:
    """Sort key for cold-store rebuilds: ascending latest credit time.

    The sort is stable, so pair order at equal times (impossible within one
    user on a live stream, but tolerated in hand-written snapshots) follows
    the input order — which keeps serialization a fixed point under reload.
    """
    return item[1]


class WindowInfluenceIndex:
    """Exact windowed influence sets with reference-counted expiry."""

    def __init__(self) -> None:
        self._pair_counts: Dict[int, Dict[int, int]] = {}
        self._influence: Dict[int, Set[int]] = {}
        # Memoised frozenset per user, dropped whenever that user's set
        # actually changes (multiplicity-only updates keep it valid).
        self._frozen: Dict[int, FrozenSet[int]] = {}

    def add(self, record: ActionRecord) -> None:
        """Account for an arriving action."""
        v = record.user
        for u in record.influencers:
            counts = self._pair_counts.setdefault(u, {})
            counts[v] = counts.get(v, 0) + 1
            if counts[v] == 1:
                self._influence.setdefault(u, set()).add(v)
                self._frozen.pop(u, None)

    def remove(self, record: ActionRecord) -> None:
        """Account for an expiring action (must have been added before)."""
        v = record.user
        for u in record.influencers:
            counts = self._pair_counts.get(u)
            if counts is None or v not in counts:
                raise KeyError(
                    f"cannot expire pair ({u} -> {v}): it was never added"
                )
            counts[v] -= 1
            if counts[v] == 0:
                del counts[v]
                self._frozen.pop(u, None)
                members = self._influence[u]
                members.discard(v)
                if not members:
                    del self._influence[u]
                if not counts:
                    del self._pair_counts[u]

    def influence_set(self, user: int) -> FrozenSet[int]:
        """``I_t(user)`` — empty when the user influences nobody.

        The returned frozenset is cached until the user's set next changes,
        so repeated reads between mutations cost O(1) instead of a copy.
        Empty results share one singleton and are never cached, so queries
        for absent users cannot grow the cache.
        """
        cached = self._frozen.get(user)
        if cached is not None:
            return cached
        members = self._influence.get(user)
        if not members:
            return _EMPTY_FROZENSET
        frozen = frozenset(members)
        self._frozen[user] = frozen
        return frozen

    def coverage(self, seeds) -> Set[int]:
        """``I_t(S) = ∪_{u∈S} I_t(u)`` for a seed iterable ``S``."""
        covered: Set[int] = set()
        for u in seeds:
            members = self._influence.get(u)
            if members:
                covered.update(members)
        return covered

    def influencers(self) -> Iterator[int]:
        """Users with a non-empty influence set in the current window."""
        return iter(self._influence)

    def __contains__(self, user: int) -> bool:
        return user in self._influence

    def __len__(self) -> int:
        """Number of users with non-empty influence sets."""
        return len(self._influence)

    def pair_count(self) -> int:
        """Total number of distinct ``(u, v)`` influence pairs."""
        return sum(len(members) for members in self._influence.values())

    def edges(self) -> Iterator[tuple]:
        """Yield ``(u, v, multiplicity)`` influence pairs (``u`` may equal ``v``)."""
        for u, counts in self._pair_counts.items():
            for v, count in counts.items():
                yield u, v, count

    def to_state(self) -> dict:
        """Explicit JSON-safe state (pair multiplicities, order-preserving).

        Dict iteration order is part of the state: ``influencers()`` feeds
        greedy candidate lists whose order breaks ties, so the rebuilt
        index must iterate exactly like the live one.
        """
        return {
            "pairs": [
                [u, [[v, count] for v, count in counts.items()]]
                for u, counts in self._pair_counts.items()
            ]
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowInfluenceIndex":
        """Rebuild an index from :meth:`to_state` output."""
        index = cls()
        for u, counts in state["pairs"]:
            index._pair_counts[u] = {v: count for v, count in counts}
            index._influence[u] = {v for v, _count in counts}
        return index


class AppendOnlyInfluenceIndex:
    """Grow-only influence sets for one checkpoint's action suffix."""

    __slots__ = ("_influence",)

    def __init__(self) -> None:
        self._influence: Dict[int, Set[int]] = {}

    def add(self, record: ActionRecord) -> list:
        """Account for an arriving action.

        Returns the list of influencer users whose set actually gained a new
        member — exactly the users SSM must re-feed to the oracle.
        """
        v = record.user
        updated = []
        for u in record.influencers:
            members = self._influence.setdefault(u, set())
            if v not in members:
                members.add(v)
                updated.append(u)
        return updated

    def influence_set(self, user: int) -> Set[int]:
        """``I_t[i](user)`` — a live (do not mutate) set view."""
        return self._influence.get(user, set())

    def fresh_members(self, user: int, covered) -> Set[int]:
        """``I_t[i](user) − covered`` — the members an admission would gain."""
        members = self._influence.get(user)
        return members - covered if members else set()

    def coverage(self, seeds) -> Set[int]:
        """Union of the influence sets of ``seeds``."""
        covered: Set[int] = set()
        for u in seeds:
            covered.update(self._influence.get(u, ()))
        return covered

    def __contains__(self, user: int) -> bool:
        return user in self._influence

    def __len__(self) -> int:
        return len(self._influence)

    def to_state(self) -> dict:
        """Explicit JSON-safe state: the grow-only suffix sets."""
        return {
            "influence": [
                [u, sorted(members)] for u, members in self._influence.items()
            ]
        }

    @classmethod
    def from_state(cls, state: dict) -> "AppendOnlyInfluenceIndex":
        """Rebuild an index from :meth:`to_state` output."""
        index = cls()
        for u, members in state["influence"]:
            index._influence[u] = set(members)
        return index


class VersionedInfluenceIndex:
    """Latest-credit influence pairs shared by every live checkpoint.

    The structure is a two-level dict ``u -> {v -> latest}`` where
    ``latest`` is the timestamp of the most recent action by ``v`` crediting
    ``u``.  Because checkpoint suffixes are nested (they differ only in
    their start time), this single map answers every checkpoint's
    ``I_t[i](u)`` exactly: a pair is in checkpoint ``i``'s set iff its
    latest credit is no older than the checkpoint's start.

    :meth:`add` returns, per influencer, the *previous* latest credit time
    (0 for never-seen pairs); the caller dispatches oracle feeds to exactly
    the checkpoints whose start exceeds it — a ``bisect`` over the sorted
    checkpoint starts instead of probing every checkpoint.

    Pairs whose latest credit predates every live checkpoint are invisible
    and reclaimed by :meth:`compact` with an amortised-O(1) doubling policy,
    so steady-state memory is O(distinct visible pairs), independent of the
    checkpoint count.

    **Cold-pair spill.**  Most visible pairs are *cold*: their latest credit
    is far older than the newest window start, so they are read (suffix
    membership) but essentially never re-credited.  When :meth:`compact` is
    called with ``now``, pairs whose latest credit predates the midpoint
    between the visibility cutoff and ``now`` are spilled out of the dicts
    into compact per-user numpy arrays sorted by credit time (``v`` ids
    aligned) — a fraction of the dict-entry footprint.  Because every view
    start that matters exceeds the spill threshold, a suffix probe is one
    ``searchsorted`` over the credit times plus a (usually empty) tail
    slice; an O(1) cached max credit time short-circuits the common case
    where none of a user's cold pairs are visible from the view.  A
    re-credited cold pair is *resurrected*: moved back to the hot dict with
    its exact previous credit time (so oracle-feed dispatch stays exact)
    and tombstoned in place (``v = -1``, credit time kept so the arrays
    stay sorted) until the next sweep rebuilds them.
    """

    __slots__ = (
        "_latest",
        "_pair_total",
        "_floor",
        "_live_at_sweep",
        "_cold",
        "_cold_total",
    )

    #: Sweep only once the index has doubled since the last sweep (with a
    #: small absolute floor so tiny streams never bother).
    _MIN_SWEEP_PAIRS = 64

    def __init__(self) -> None:
        self._latest: Dict[int, Dict[int, int]] = {}
        self._pair_total = 0
        # Every stored latest is >= _floor; a view whose start is <= _floor
        # therefore sees the *full* pair map of a user (fast path).
        self._floor = 0
        self._live_at_sweep = 0
        # Cold store: user -> [v_ids (int64), credit_times (int64, sorted
        # ascending), tombstone_count, max_live_credit_time].  Live cold
        # pairs are disjoint from the hot dict.
        self._cold: Dict[int, list] = {}
        self._cold_total = 0

    def add(self, record: ActionRecord) -> List[Tuple[int, int]]:
        """Record one arriving action in O(d) dict writes.

        Returns ``[(influencer, previous_latest), ...]`` in influencer
        order, ``previous_latest`` being 0 when the pair was never credited
        before.  A checkpoint gains a new member for the pair exactly when
        its start exceeds ``previous_latest``.
        """
        v = record.user
        time = record.time
        latest = self._latest
        updates: List[Tuple[int, int]] = []
        cold = self._cold
        for u in record.influencers:
            pairs = latest.get(u)
            if pairs is None:
                latest[u] = {v: time}
                self._pair_total += 1
                updates.append((u, self._cold_pop(u, v) if cold else 0))
                continue
            old = pairs.get(v, 0)
            if old == 0:
                self._pair_total += 1
                if cold:
                    old = self._cold_pop(u, v)
            pairs[v] = time
            updates.append((u, old))
        return updates

    def add_batch(
        self, records: Sequence[ActionRecord]
    ) -> List[Tuple[int, int, int]]:
        """Record a whole slide; return flat ``(performer, influencer, previous)``.

        Equivalent to calling :meth:`add` per record, but returns one flat
        update list for the slide — the shape the batched dispatch plane
        consumes — with the per-record temporaries and attribute lookups
        hoisted out of the loop.  Updates keep record order, then
        influencer order within a record.
        """
        latest = self._latest
        cold = self._cold
        updates: List[Tuple[int, int, int]] = []
        append = updates.append
        for record in records:
            v = record.user
            time = record.time
            for u in record.influencers:
                pairs = latest.get(u)
                if pairs is None:
                    latest[u] = {v: time}
                    self._pair_total += 1
                    append((v, u, self._cold_pop(u, v) if cold else 0))
                    continue
                old = pairs.get(v, 0)
                if old == 0:
                    self._pair_total += 1
                    if cold:
                        old = self._cold_pop(u, v)
                pairs[v] = time
                append((v, u, old))
        return updates

    def _cold_pop(self, user: int, v: int) -> int:
        """Resurrect a cold pair: return its credit time and tombstone it.

        Returns 0 when the pair is not (live) in the cold store.  The exact
        previous credit time matters: oracle-feed dispatch bisects on it,
        and a checkpoint whose suffix already held the pair must not be fed
        a spurious "new member".  Tombstoning overwrites the ``v`` id with
        ``-1`` and keeps the credit time, so the time axis stays sorted for
        the views' ``searchsorted`` probes (a tombstone can keep the cached
        max credit time stale-high, which is conservative: the view then
        slices an empty tail instead of short-circuiting).
        """
        entry = self._cold.get(user)
        if entry is None:
            return 0
        vs = entry[0]
        hits = _np.flatnonzero(vs == v)
        if not hits.size:
            return 0
        i = int(hits[0])
        vs[i] = -1
        entry[2] += 1
        self._cold_total -= 1
        return int(entry[1][i])

    def view(self, start: int) -> "SuffixView":
        """A read-only ``I_t[i]`` facade for the suffix starting at ``start``."""
        return SuffixView(self, start)

    def latest(self, influencer: int, influenced: int) -> int:
        """Latest credit time of the pair, or 0 when never credited."""
        pairs = self._latest.get(influencer)
        t = pairs.get(influenced, 0) if pairs else 0
        if t == 0 and self._cold:
            entry = self._cold.get(influencer)
            if entry is not None:
                hits = _np.flatnonzero(entry[0] == influenced)
                if hits.size:
                    t = int(entry[1][int(hits[0])])
        return t

    def compact(
        self, cutoff: int, force: bool = False, now: Optional[int] = None
    ) -> int:
        """Reclaim pairs invisible to every checkpoint (latest < ``cutoff``).

        A full sweep costs O(pairs), so unless ``force`` is set it only runs
        once the stored pair count has doubled since the previous sweep —
        amortised O(1) per :meth:`add` while bounding memory to twice the
        visible pairs.  Returns the number of pairs dropped.

        When ``now`` (the current stream time) is given and numpy is
        available, the sweep additionally *spills* visible-but-cold pairs —
        latest credit older than the midpoint between ``cutoff`` and
        ``now`` — into the compact array-backed cold store (still visible
        to every view; see the class docstring).
        """
        if cutoff <= self._floor:
            return 0
        if not force and self._pair_total < max(
            self._MIN_SWEEP_PAIRS, 2 * self._live_at_sweep
        ):
            return 0
        spill_before = cutoff
        if now is not None and _np is not None and now > cutoff:
            spill_before = cutoff + (now - cutoff) // 2
        hot_dropped = 0
        moved: Dict[int, List[Tuple[int, int]]] = {}
        latest = self._latest
        for u in list(latest):
            pairs = latest[u]
            stale = None
            move = None
            for v, t in pairs.items():
                if t >= spill_before:
                    continue
                if t < cutoff:
                    if stale is None:
                        stale = []
                    stale.append(v)
                else:
                    if move is None:
                        move = []
                    move.append((v, t))
            if stale:
                for v in stale:
                    del pairs[v]
                hot_dropped += len(stale)
            if move:
                for v, _t in move:
                    del pairs[v]
                moved[u] = move
                self._pair_total -= len(move)
            if not pairs:
                del latest[u]
        self._pair_total -= hot_dropped
        cold_dropped = 0
        if self._cold or moved:
            cold_dropped = self._rebuild_cold(cutoff, moved)
        self._floor = cutoff
        self._live_at_sweep = self._pair_total
        return hot_dropped + cold_dropped

    def _rebuild_cold(self, cutoff: int, moved: dict) -> int:
        """Re-pack the cold store: drop expired/tombstoned entries, add
        freshly spilled ones.  Returns the number of cold pairs dropped."""
        survivors: Dict[int, list] = {}
        kept = 0
        for u, entry in self._cold.items():
            vs, ts = entry[0], entry[1]
            # Tombstones carry v = -1; expired pairs predate the cutoff.
            mask = (vs >= 0) & (ts >= cutoff)
            if mask.any():
                items = list(zip(vs[mask].tolist(), ts[mask].tolist()))
                survivors[u] = items
                kept += len(items)
        dropped = self._cold_total - kept
        for u, items in moved.items():
            bucket = survivors.get(u)
            if bucket is None:
                survivors[u] = items
            else:
                bucket.extend(items)
        cold: Dict[int, list] = {}
        total = 0
        for u, items in survivors.items():
            items.sort(key=_by_credit_time)
            cold[u] = [
                _np.array([v for v, _t in items], dtype=_np.int64),
                _np.array([t for _v, t in items], dtype=_np.int64),
                0,
                items[-1][1],
            ]
            total += len(items)
        self._cold = cold
        self._cold_total = total
        return dropped

    def to_state(self) -> dict:
        """Explicit JSON-safe state (latest-credit pairs, order-preserving).

        Per-user pair order is part of the state: ``SuffixView`` methods
        build fresh sets by iterating these dicts, and downstream float
        accumulation (weighted/non-modular functions) follows that order,
        so the rebuilt index must iterate exactly like the live one.
        """
        state = {
            "floor": self._floor,
            "live_at_sweep": self._live_at_sweep,
            "pairs": [
                [u, [[v, t] for v, t in pairs.items()]]
                for u, pairs in self._latest.items()
            ],
        }
        if self._cold_total:
            cold_pairs = []
            for u, entry in self._cold.items():
                items = [
                    [v, t]
                    for v, t in zip(entry[0].tolist(), entry[1].tolist())
                    if v >= 0  # skip tombstones (resurrected into the hot dict)
                ]
                if items:
                    cold_pairs.append([u, items])
            state["cold"] = cold_pairs
        return state

    @classmethod
    def from_state(cls, state: dict) -> "VersionedInfluenceIndex":
        """Rebuild an index from :meth:`to_state` output."""
        index = cls()
        index._floor = state["floor"]
        index._live_at_sweep = state["live_at_sweep"]
        total = 0
        for u, pairs in state["pairs"]:
            index._latest[u] = {v: t for v, t in pairs}
            total += len(pairs)
        index._pair_total = total
        cold_pairs = state.get("cold")
        if cold_pairs:
            if _np is None:
                raise ImportError(
                    "this index snapshot contains spilled cold pairs, "
                    "which require numpy to load"
                )
            for u, items in cold_pairs:
                # Live emits are already time-sorted; re-sorting (stable)
                # also accepts older snapshots that stored pairs by v id.
                items = sorted(items, key=_by_credit_time)
                index._cold[u] = [
                    _np.array([v for v, _t in items], dtype=_np.int64),
                    _np.array([t for _v, t in items], dtype=_np.int64),
                    0,
                    items[-1][1],
                ]
                index._cold_total += len(items)
        return index

    @property
    def floor(self) -> int:
        """Every stored pair's latest credit is at least this time."""
        return self._floor

    @property
    def user_count(self) -> int:
        """Users with at least one stored pair (hot or cold)."""
        if not self._cold:
            return len(self._latest)
        users = set(self._latest)
        for u, entry in self._cold.items():
            if entry[2] < len(entry[0]):  # has live (non-tombstoned) pairs
                users.add(u)
        return len(users)

    @property
    def pair_count(self) -> int:
        """Distinct stored ``(u, v)`` pairs — the index's physical size."""
        return self._pair_total + self._cold_total

    @property
    def cold_pair_count(self) -> int:
        """Pairs currently spilled into the array-backed cold store."""
        return self._cold_total

    def __contains__(self, user: int) -> bool:
        if user in self._latest:
            return True
        if self._cold:
            entry = self._cold.get(user)
            return entry is not None and entry[2] < len(entry[0])
        return False

    def __len__(self) -> int:
        """Number of users with at least one stored pair (hot or cold)."""
        return self.user_count


class SuffixView:
    """One checkpoint's read-only ``I_t[i]`` over the shared index.

    Satisfies the ``influence_set``/``coverage`` protocol that oracles and
    influence functions consume, by filtering the shared pair map against
    the checkpoint's start time.  Views hold no per-checkpoint state, so a
    live checkpoint costs O(1) index memory.
    """

    __slots__ = ("_index", "start")

    def __init__(self, index: VersionedInfluenceIndex, start: int):
        if start <= 0:
            raise ValueError(f"suffix start must be positive, got {start}")
        self._index = index
        #: The checkpoint's start time (pairs credited earlier are hidden).
        self.start = start

    def _cold_suffix(self, user: int):
        """Live cold members of ``user`` visible from this view, or ``None``.

        The arrays are sorted by credit time, so the visible pairs are one
        ``searchsorted`` tail slice; the cached max live credit time makes
        the dominant none-visible case an O(1) integer compare (a stale —
        too high — max after resurrections only costs a futile slice).
        Tombstones carry ``v = -1`` and are filtered from the tail.
        """
        entry = self._index._cold.get(user)
        if entry is None:
            return None
        start = self.start
        if start > entry[3]:
            return None
        vs, ts, stale = entry[0], entry[1], entry[2]
        if stale >= len(vs):
            return None
        i = int(_np.searchsorted(ts, start))
        if i >= len(vs):
            return None
        tail = vs[i:]
        if stale:
            tail = tail[tail >= 0]
            if not tail.size:
                return None
        return tail

    def influence_set(self, user: int) -> Set[int]:
        """``I_t[i](user)``: pairs credited at or after the view's start."""
        pairs = self._index._latest.get(user)
        start = self.start
        if not pairs:
            members = set()
        elif start <= self._index._floor:
            members = set(pairs)
        else:
            members = {v for v, t in pairs.items() if t >= start}
        if self._index._cold:
            cold = self._cold_suffix(user)
            if cold is not None:
                members.update(cold.tolist())
        return members

    def fresh_members(self, user: int, covered) -> Set[int]:
        """``I_t[i](user) − covered`` in one pass (the admission hot path)."""
        index = self._index
        pairs = index._latest.get(user)
        start = self.start
        if not pairs:
            fresh = set()
        elif start <= index._floor:
            # Dict keys are a set view: the difference runs at C level.
            fresh = pairs.keys() - covered
        else:
            fresh = {
                v for v, t in pairs.items() if t >= start and v not in covered
            }
        if index._cold:
            cold = self._cold_suffix(user)
            if cold is not None:
                for v in cold.tolist():
                    if v not in covered:
                        fresh.add(v)
        return fresh

    def coverage(self, seeds) -> Set[int]:
        """Union of the influence sets of ``seeds``."""
        index = self._index
        latest = index._latest
        start = self.start
        full = start <= index._floor
        consult_cold = bool(index._cold)
        covered: Set[int] = set()
        for u in seeds:
            pairs = latest.get(u)
            if pairs:
                if full:
                    covered.update(pairs)
                else:
                    covered.update(v for v, t in pairs.items() if t >= start)
            if consult_cold:
                cold = self._cold_suffix(u)
                if cold is not None:
                    covered.update(cold.tolist())
        return covered

    def __contains__(self, user: int) -> bool:
        index = self._index
        pairs = index._latest.get(user)
        start = self.start
        if pairs:
            if start <= index._floor:
                return True
            if any(t >= start for t in pairs.values()):
                return True
        if index._cold:
            return self._cold_suffix(user) is not None
        return False

    def __len__(self) -> int:
        """Number of users with a non-empty suffix influence set."""
        index = self._index
        latest = index._latest
        start = self.start
        if not index._cold:
            if start <= index._floor:
                return len(latest)
            return sum(
                1
                for pairs in latest.values()
                if any(t >= start for t in pairs.values())
            )
        full = start <= index._floor
        count = 0
        for u, pairs in latest.items():
            if full or any(t >= start for t in pairs.values()):
                count += 1
            elif self._cold_suffix(u) is not None:
                count += 1
        for u in index._cold:
            if u not in latest and self._cold_suffix(u) is not None:
                count += 1
        return count
