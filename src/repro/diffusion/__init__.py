"""Diffusion simulation: IC-model Monte Carlo and RR-set sampling."""

from repro.diffusion.monte_carlo import estimate_spread, simulate_spread
from repro.diffusion.rr_sets import (
    coverage_greedy,
    generate_rr_sets,
    random_rr_set,
)

__all__ = [
    "coverage_greedy",
    "estimate_spread",
    "generate_rr_sets",
    "random_rr_set",
    "simulate_spread",
]
