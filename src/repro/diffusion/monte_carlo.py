"""Monte-Carlo estimation of influence spread under the IC model.

The paper's quality metric (Section 6.1): the expected number of users
activated by a seed set under the independent-cascade process on the
influence graph ``G_t`` with WC probabilities, averaged over simulation
rounds (10,000 in the paper; configurable here because pure Python pays a
constant factor — the estimator itself is identical).

Each round performs a randomised BFS: an activated user ``u`` tries once to
activate each inactive successor ``v`` with the edge's probability.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.graphs.graph import DiGraph

__all__ = ["simulate_spread", "estimate_spread"]


def simulate_spread(
    graph: DiGraph,
    seeds: Iterable[int],
    rng: random.Random,
) -> int:
    """One IC-model cascade; returns the number of activated users."""
    active = {s for s in seeds if s in graph}
    frontier = list(active)
    while frontier:
        next_frontier = []
        for u in frontier:
            for v, probability in graph.successors(u).items():
                if v not in active and rng.random() < probability:
                    active.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return len(active)


def estimate_spread(
    graph: DiGraph,
    seeds: Iterable[int],
    rounds: int = 10_000,
    seed: Optional[int] = None,
) -> float:
    """Average IC-model spread of ``seeds`` over ``rounds`` simulations.

    Args:
        graph: Influence graph with activation probabilities.
        seeds: The seed users (users absent from the graph contribute 0).
        rounds: Number of Monte-Carlo rounds (paper default 10,000).
        seed: RNG seed for reproducibility.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    seed_list = list(seeds)
    if not seed_list:
        return 0.0
    rng = random.Random(seed)
    total = 0
    for _ in range(rounds):
        total += simulate_spread(graph, seed_list, rng)
    return total / rounds
