"""repro — reproduction of *Real-Time Influence Maximization on Dynamic
Social Streams* (Wang, Fan, Li, Tan; VLDB 2017).

The library implements the paper's Stream Influence Maximization (SIM)
query, the Influential Checkpoints (IC) and Sparse Influential Checkpoints
(SIC) frameworks with the four checkpoint oracles of Table 2, the windowed
greedy / IMM / UBI comparison baselines, synthetic dataset generators, and a
full experiment harness regenerating every figure and table of Section 6.

Quickstart::

    from repro import Action, SparseInfluentialCheckpoints, batched

    sic = SparseInfluentialCheckpoints(window_size=1000, k=10, beta=0.2)
    for batch in batched(my_stream, size=100):
        sic.process(batch)
        answer = sic.query()
        print(answer.time, sorted(answer.seeds), answer.value)
"""

from repro.core import (
    ROOT,
    MultiQueryEngine,
    Action,
    ActionRecord,
    AppendOnlyInfluenceIndex,
    SuffixView,
    VersionedInfluenceIndex,
    Checkpoint,
    DiffusionForest,
    InfluentialCheckpoints,
    ListStream,
    OracleSpec,
    SIMAlgorithm,
    SIMResult,
    SlidingWindow,
    SparseInfluentialCheckpoints,
    WindowInfluenceIndex,
    WindowedGreedy,
    batched,
    greedy_seed_selection,
    renumber,
    validate_stream,
)
from repro.influence import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    FilteredSIM,
    InfluenceFunction,
    LocationAwareSIM,
    Region,
    TopicAwareSIM,
    WeightedCardinalityInfluence,
    filter_stream,
    region_filter,
    topic_filter,
)

__version__ = "1.0.0"

__all__ = [
    "ROOT",
    "Action",
    "ActionRecord",
    "AppendOnlyInfluenceIndex",
    "SuffixView",
    "VersionedInfluenceIndex",
    "CardinalityInfluence",
    "Checkpoint",
    "ConformityAwareInfluence",
    "DiffusionForest",
    "InfluenceFunction",
    "InfluentialCheckpoints",
    "FilteredSIM",
    "ListStream",
    "LocationAwareSIM",
    "MultiQueryEngine",
    "OracleSpec",
    "Region",
    "SIMAlgorithm",
    "SIMResult",
    "SlidingWindow",
    "SparseInfluentialCheckpoints",
    "TopicAwareSIM",
    "WeightedCardinalityInfluence",
    "WindowInfluenceIndex",
    "WindowedGreedy",
    "batched",
    "filter_stream",
    "greedy_seed_selection",
    "region_filter",
    "renumber",
    "topic_filter",
    "validate_stream",
]
