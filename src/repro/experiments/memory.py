"""Memory accounting for the checkpoint frameworks.

Figure 6's commentary argues SIC's sparse checkpoints buy "both space and
time efficiencies".  Throughput (time) is directly measurable; this module
makes the *space* side measurable too, without psutil: it counts the
logical footprint of a framework's state — checkpoints, influence-index
entries, and oracle instances — which is what actually scales with N, L,
and β.

The counts are *physical*: what the process actually stores.  A framework
running the default shared
:class:`~repro.core.influence_index.VersionedInfluenceIndex` stores each
distinct ``(u, v)`` influence pair exactly once, no matter how many
checkpoints view it, so ``index_entries`` no longer scales with the
checkpoint count.  In the per-checkpoint reference mode
(``shared_index=False``) the old per-suffix sums are reported, which is
what the paper's Figure 6 analysis describes.

The counts are implementation-level but deterministic, so tests can assert
e.g. that the shared index is a fraction of the per-checkpoint copies on
the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints

__all__ = ["FrameworkFootprint", "measure_footprint", "sharded_work"]


@dataclass(frozen=True)
class FrameworkFootprint:
    """Logical size of a checkpoint framework's state.

    Attributes:
        checkpoints: Live checkpoint count.
        index_users: Users tracked by the influence index state.  With the
            shared index this is the user count of the single versioned
            map; in reference mode it sums users over checkpoint copies.
        index_entries: ``(user, influenced)`` influence-index entries
            physically stored.  Shared mode: distinct pairs, counted once.
            Reference mode: the sum of all suffix sizes — the dominant
            O(N·checkpoints) term the shared index eliminates.
        oracle_instances: Threshold-guess instances across all oracles
            (0 for swap/greedy oracles).
        oracle_covered_entries: Covered-set entries across all instances.
        shared: True when the framework runs the shared versioned index.
    """

    checkpoints: int
    index_users: int
    index_entries: int
    oracle_instances: int
    oracle_covered_entries: int
    shared: bool = False

    @property
    def total_entries(self) -> int:
        """A single comparable figure: all set entries held."""
        return self.index_entries + self.oracle_covered_entries

    def ratio_to(self, other: "FrameworkFootprint") -> float:
        """This footprint's total entries relative to ``other``'s."""
        if other.total_entries == 0:
            return 0.0
        return self.total_entries / other.total_entries


def measure_footprint(
    framework: Union[InfluentialCheckpoints, SparseInfluentialCheckpoints],
) -> FrameworkFootprint:
    """Count the logical footprint of an IC or SIC instance."""
    checkpoints = 0
    index_users = 0
    index_entries = 0
    instances = 0
    covered = 0
    shared = getattr(framework, "shared_index", None)
    kernel = getattr(framework, "columnar_kernel", None)
    if kernel is not None:
        # Columnar plane: the kernel accounts for every column at once —
        # materializing a per-checkpoint oracle object just to count its
        # instances would defeat the plane being measured.
        checkpoints = len(framework.checkpoints)
        instances, covered = kernel.footprint()
    else:
        for checkpoint in framework.checkpoints:
            checkpoints += 1
            if shared is None:
                influence = checkpoint.index._influence  # noqa: SLF001 - accounting
                index_users += len(influence)
                index_entries += sum(
                    len(members) for members in influence.values()
                )
            oracle = checkpoint.oracle
            oracle_instances = getattr(oracle, "_instances", None)
            if oracle_instances:
                instances += len(oracle_instances)
                for instance in oracle_instances.values():
                    covered += len(getattr(instance, "covered", ()))
            cover_counts = getattr(oracle, "_cover_counts", None)
            if cover_counts is not None:
                covered += len(cover_counts)
    if shared is not None:
        # One versioned map serves every checkpoint: count it once.
        index_users = shared.user_count
        index_entries = shared.pair_count
    return FrameworkFootprint(
        checkpoints=checkpoints,
        index_users=index_users,
        index_entries=index_entries,
        oracle_instances=instances,
        oracle_covered_entries=covered,
        shared=shared is not None,
    )


def sharded_work(engine) -> dict:
    """Per-shard consumed-work accounting for a sharded engine.

    The broadcast-era accounting reported every shard's ``actions`` as the
    stream-global count — S shards looked like they did 1× work each when
    they actually replicated the stream S times.  This reports what each
    shard *consumed* in its own unit (the same unit ``/metrics`` and the
    ``shard_scaling`` bench use): routed influence records in routed mode,
    stream actions in broadcast mode — plus the replication factor, total
    consumed work relative to the stream length (S in broadcast; typically
    ~1 in routed mode, where a record is only duplicated when its
    influencer chain spans shards).

    Args:
        engine: A :class:`~repro.sharding.engine.ShardedEngine`.

    Returns:
        ``{"ingest", "stream_actions", "unit", "per_shard",
        "total_consumed", "replication_factor"}``.
    """
    stats = engine.supervision_stats()
    routed = stats.get("ingest") == "routed"
    unit = "routed_records" if routed else "actions"
    per_shard = [
        int(state.get(unit) or 0) for state in stats["shards"]
    ]
    stream_actions = int(engine.actions_processed)
    total = sum(per_shard)
    return {
        "ingest": stats.get("ingest", "broadcast"),
        "stream_actions": stream_actions,
        "unit": unit,
        "per_shard": per_shard,
        "total_consumed": total,
        "replication_factor": (
            round(total / stream_actions, 4) if stream_actions else 0.0
        ),
    }
