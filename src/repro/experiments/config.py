"""Experiment parameters (the paper's Table 4, with scale presets).

Table 4 (defaults in bold in the paper):

=========  ===========================================  =========
parameter  values                                       default
=========  ===========================================  =========
``k``      5, 25, **50**, 75, 100                       50
``β``      0.1, 0.2, **0.3**, 0.4, 0.5                  0.3
``N``      100K, 250K, **500K**, 750K, 1000K            500K
``L``      1K, 2.5K, **5K**, 7.5K, 10K                  5K
``|U|``    1M, **2M**, 3M, 4M, 5M                       2M
=========  ===========================================  =========

Pure Python pays a 30–100× constant over the paper's Java/C++ testbed, so
the grids are expressed *relative to a base scale* and three presets are
provided:

* ``SMALL``  — seconds per experiment; used by tests and benchmarks.
* ``MEDIUM`` — minutes; closer crossover positions.
* ``PAPER``  — the original absolute numbers (hours in pure Python).

Within a preset every ratio the figures depend on is preserved: ``L/N``,
``N/stream length``, mean response distance/stream length, and the ``k``
and ``β`` grids are kept verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Tuple

__all__ = ["Scale", "ExperimentConfig", "DATASETS", "make_config"]

#: Dataset names accepted across the harness.
DATASETS: Tuple[str, ...] = ("reddit", "twitter", "syn-o", "syn-n")

#: The paper's β grid (Table 4) — scale independent.
BETA_GRID: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
#: The paper's k grid (Table 4) — scale independent.
K_GRID: Tuple[int, ...] = (5, 25, 50, 75, 100)
#: N grid as multiples of the preset's base window (paper: 0.2x..2x of 500K).
N_FACTORS: Tuple[float, ...] = (0.2, 0.5, 1.0, 1.5, 2.0)
#: L grid as fractions of the window (paper: 1K..10K over N=500K).
L_FRACTIONS: Tuple[float, ...] = (0.002, 0.005, 0.01, 0.015, 0.02)
#: |U| grid as multiples of the preset's base universe (paper: 1M..5M / 2M).
U_FACTORS: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5)


class Scale(Enum):
    """Preset experiment scale."""

    TINY = "tiny"
    SMALL = "small"
    MEDIUM = "medium"
    PAPER = "paper"


#: Base sizes per scale: (users, stream length, window size).
_BASE_SIZES: Dict[Scale, Tuple[int, int, int]] = {
    Scale.TINY: (800, 3_000, 800),
    Scale.SMALL: (2_000, 8_000, 2_000),
    Scale.MEDIUM: (20_000, 100_000, 20_000),
    Scale.PAPER: (2_000_000, 10_000_000, 500_000),
}

#: Default k per scale (paper default 50; smaller presets shrink k so the
#: seed set stays a comparable fraction of the active-user population).
_BASE_K: Dict[Scale, int] = {
    Scale.TINY: 5,
    Scale.SMALL: 10,
    Scale.MEDIUM: 25,
    Scale.PAPER: 50,
}

#: Window/slide ratio per scale.  The paper's default is 100 (N=500K over
#: L=5K); TINY relaxes to 40 so that IC's checkpoint population stays
#: meaningful without making CI benchmarks minutes long.
_SLIDE_DIVISOR: Dict[Scale, int] = {
    Scale.TINY: 40,
    Scale.SMALL: 100,
    Scale.MEDIUM: 100,
    Scale.PAPER: 100,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Fully resolved parameters of one experiment run."""

    dataset: str
    n_users: int
    n_actions: int
    window_size: int
    slide: int
    k: int
    beta: float
    seed: int = 7
    mc_rounds: int = 200
    oracle: str = "sieve"

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; expected one of {DATASETS}"
            )
        if self.slide <= 0 or self.window_size <= 0:
            raise ValueError("window size and slide must be positive")
        if self.slide > self.window_size:
            raise ValueError(
                f"slide ({self.slide}) must not exceed window "
                f"({self.window_size})"
            )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def make_config(
    dataset: str = "syn-o",
    scale: Scale = Scale.SMALL,
    **overrides,
) -> ExperimentConfig:
    """Build the default configuration of a preset, with overrides.

    The default slide is 1% of the window (the paper's L=5K over N=500K).
    """
    users, actions, window = _BASE_SIZES[scale]
    config = ExperimentConfig(
        dataset=dataset,
        n_users=users,
        n_actions=actions,
        window_size=window,
        slide=max(1, window // _SLIDE_DIVISOR[scale]),
        k=_BASE_K[scale],
        beta=0.3,
    )
    return config.with_overrides(**overrides) if overrides else config
