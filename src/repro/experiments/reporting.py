"""Plain-text experiment reports (the figures as printed series)."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExperimentTable", "format_table", "ascii_chart"]


def ascii_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence,
    width: int = 52,
    height: int = 12,
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    The figures of the paper are line plots; this gives the CLI a quick
    visual of each regenerated series without any plotting dependency.

    Args:
        series: ``{label: y-values}`` — all the same length as ``x_labels``.
        x_labels: Sweep coordinates (β, k, N, ...), shown under the chart.
        width: Plot width in characters.
        height: Plot height in rows.
    """
    if not series:
        return "(no data)"
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("all series must match the x-label count")
    if len(x_labels) < 2:
        raise ValueError("need at least two points to chart")
    all_values = [v for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    markers = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        for i, value in enumerate(values):
            col = round(i * (width - 1) / (len(values) - 1))
            row = (height - 1) - round((value - low) / span * (height - 1))
            grid[row][col] = marker
    lines = []
    for row_index, row in enumerate(grid):
        level = high - span * row_index / (height - 1)
        lines.append(f"{level:>10.1f} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    first, last = str(x_labels[0]), str(x_labels[-1])
    pad = max(1, width - len(first) - len(last))
    lines.append(" " * 12 + first + " " * pad + last)
    legend = "   ".join(
        f"{markers[i % len(markers)]}={label}"
        for i, label in enumerate(sorted(series))
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A figure/table rendered as rows of measurements.

    Attributes:
        title: Human-readable caption (e.g. "Figure 7: throughput vs β").
        headers: Column names; the first columns are the sweep coordinates.
        rows: One list per measurement point.
    """

    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one measurement row."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """The table as aligned text, with its caption."""
        return f"{self.title}\n{format_table(self.headers, self.rows)}"

    def to_csv(self) -> str:
        """The table as CSV (headers included)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def column(self, name: str) -> List:
        """All values of one column."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def series(self, filters: Dict[str, object], y: str) -> List:
        """Values of column ``y`` in rows matching all ``filters``."""
        indexes = {name: self.headers.index(name) for name in filters}
        y_index = self.headers.index(y)
        return [
            row[y_index]
            for row in self.rows
            if all(row[indexes[name]] == value for name, value in filters.items())
        ]

    def chart(
        self,
        x: str,
        y: str,
        group: str,
        filters: Optional[Dict[str, object]] = None,
    ) -> str:
        """ASCII line chart of ``y`` over ``x``, one series per ``group``.

        Rows are optionally pre-filtered (e.g. to one dataset).  Series with
        missing (None) points are skipped.
        """
        filters = filters or {}
        rows = [
            row
            for row in self.rows
            if all(
                row[self.headers.index(name)] == value
                for name, value in filters.items()
            )
        ]
        x_index = self.headers.index(x)
        y_index = self.headers.index(y)
        group_index = self.headers.index(group)
        x_values = sorted({row[x_index] for row in rows})
        series: Dict[str, List[float]] = {}
        for label in sorted({row[group_index] for row in rows}):
            points = {
                row[x_index]: row[y_index]
                for row in rows
                if row[group_index] == label
            }
            if all(points.get(xv) is not None for xv in x_values):
                series[str(label)] = [float(points[xv]) for xv in x_values]
        return ascii_chart(series, x_values)
