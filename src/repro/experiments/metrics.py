"""Measurement utilities: throughput, exact influence value, MC quality.

The paper's two metrics (Section 6.1):

* **Throughput** — actions per second of CPU time spent maintaining (and,
  for the recompute-on-query baselines, answering) each approach, measured
  per window slide of ``L`` actions.
* **Quality** — the expected IC-model spread of the returned seeds on the
  window's influence graph under WC probabilities, by Monte-Carlo
  simulation.

:class:`StreamEvaluator` maintains the *exact* window influence index
independently of the algorithm under test, so influence values and quality
are computed from ground truth rather than the algorithm's own caches, and
the evaluator's cost never pollutes throughput numbers.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Optional, Sequence

from repro.core.actions import Action
from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import WindowInfluenceIndex
from repro.diffusion.monte_carlo import estimate_spread
from repro.graphs.influence_graph import build_influence_graph

__all__ = ["ThroughputMeter", "RateEstimator", "StreamEvaluator"]


class ThroughputMeter:
    """Accumulates timed work and reports actions/second."""

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._actions = 0
        self._started: Optional[float] = None

    def start(self) -> None:
        """Begin timing one slide."""
        if self._started is not None:
            raise RuntimeError("meter already started")
        self._started = time.perf_counter()

    def stop(self, actions: int) -> float:
        """End timing; credit ``actions`` processed.  Returns the interval."""
        if self._started is None:
            raise RuntimeError("meter was not started")
        interval = time.perf_counter() - self._started
        self._started = None
        self._elapsed += interval
        self._actions += actions
        return interval

    @property
    def elapsed(self) -> float:
        """Total timed seconds."""
        return self._elapsed

    @property
    def actions(self) -> int:
        """Total credited actions."""
        return self._actions

    @property
    def throughput(self) -> float:
        """Actions per second (0.0 before any measurement)."""
        if self._elapsed <= 0.0:
            return 0.0
        return self._actions / self._elapsed


class RateEstimator:
    """Exponentially-decayed event rate (events/second).

    Unlike :class:`ThroughputMeter`, which reports a lifetime average over
    explicitly timed work, this estimator answers "how fast *right now*":
    each recorded count and the elapsed time behind it decay with a
    half-life, so the reported rate tracks the recent past.  The serving
    plane uses it for the ``/metrics`` ingest rate.
    """

    def __init__(self, halflife: float = 10.0, clock=time.monotonic):
        """
        Args:
            halflife: Seconds after which a recorded count weighs half.
            clock: Monotonic time source (injectable for tests).
        """
        if halflife <= 0:
            raise ValueError(f"halflife must be positive, got {halflife}")
        self._halflife = halflife
        self._clock = clock
        self._count = 0.0
        self._elapsed = 0.0
        self._last: Optional[float] = None
        self._total = 0
        self._first: Optional[float] = None

    def record(self, count: int = 1) -> None:
        """Credit ``count`` events at the current clock reading."""
        now = self._clock()
        self._total += count
        if self._first is None:
            self._first = now
        if self._last is not None:
            interval = max(now - self._last, 0.0)
            weight = 0.5 ** (interval / self._halflife)
            self._count = self._count * weight + count
            self._elapsed = self._elapsed * weight + interval
        else:
            self._count = float(count)
        self._last = now

    @property
    def rate(self) -> float:
        """Decayed events/second (0.0 until two recordings exist)."""
        last = self._last
        if last is None or self._elapsed <= 0.0:
            return 0.0
        # Decay up to the present so an idle stream's rate falls off.
        interval = max(self._clock() - last, 0.0)
        weight = 0.5 ** (interval / self._halflife)
        count = self._count * weight
        elapsed = self._elapsed * weight + interval
        if elapsed <= 0.0:
            return 0.0
        return count / elapsed

    @property
    def total(self) -> int:
        """Undecayed lifetime event count."""
        return self._total

    @property
    def lifetime_rate(self) -> float:
        """Lifetime events/second since the first recording (undecayed)."""
        first = self._first
        if first is None:
            return 0.0
        elapsed = max(self._clock() - first, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self._total / elapsed


class StreamEvaluator:
    """Ground-truth window state for influence values and MC quality."""

    def __init__(self, window_size: int):
        self._forest = DiffusionForest()
        self._index = WindowInfluenceIndex()
        self._records: Deque = deque()
        self._window_size = window_size
        self._count = 0

    @property
    def index(self) -> WindowInfluenceIndex:
        """The exact windowed influence index."""
        return self._index

    def feed(self, batch: Sequence[Action]) -> None:
        """Advance the ground-truth window by one slide."""
        for action in batch:
            record = self._forest.add(action)
            self._records.append(record)
            self._index.add(record)
            self._count += 1
        while len(self._records) > self._window_size:
            self._index.remove(self._records.popleft())

    def influence_value(self, seeds) -> float:
        """Exact ``|I_t(seeds)|`` for the current window."""
        return float(len(self._index.coverage(seeds)))

    def quality(
        self,
        seeds,
        mc_rounds: int = 200,
        seed: Optional[int] = None,
    ) -> float:
        """Expected WC-model spread of ``seeds`` on the window's ``G_t``."""
        graph = build_influence_graph(self._index)
        return estimate_spread(graph, seeds, rounds=mc_rounds, seed=seed)
