"""Per-figure experiment definitions — one function per paper artefact.

Every figure and table of Section 6 has a regenerator here returning an
:class:`~repro.experiments.reporting.ExperimentTable` whose rows are the
points of the paper's plots:

=========  =====================================================
function   paper artefact
=========  =====================================================
fig5_6_7   Figures 5, 6, 7 — IC vs SIC sweep over β (one pass
           yields influence value, checkpoint count, throughput)
fig8_9     Figures 8, 9 — all approaches, sweep over k
           (quality via Monte-Carlo WC spread + throughput)
fig10      Figure 10 — throughput sweep over window size N
fig11      Figure 11 — throughput sweep over slide length L
fig12      Figure 12 — throughput sweep over |U| (SYN datasets)
table2     Table 2 ablation — the four checkpoint oracles
table3     Table 3 — dataset statistics
=========  =====================================================

Grids replicate Table 4 relative to the chosen
:class:`~repro.experiments.config.Scale` (see that module for the scaling
rationale); pass ``datasets=(...)`` to restrict the sweep.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.config import (
    BETA_GRID,
    DATASETS,
    K_GRID,
    L_FRACTIONS,
    N_FACTORS,
    U_FACTORS,
    ExperimentConfig,
    Scale,
    make_config,
)
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm

__all__ = [
    "fig5_6_7",
    "fig5",
    "fig6",
    "fig7",
    "fig8_9",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "table3",
]

#: The five compared approaches of Section 6.1, fastest first.
ALL_ALGORITHMS: Tuple[str, ...] = ("sic", "ic", "greedy", "imm", "ubi")


def _run(config: ExperimentConfig, algorithm_name: str, **kwargs):
    algorithm = build_algorithm(algorithm_name, config)
    stream = make_stream(config)
    return run_algorithm(
        algorithm,
        stream,
        slide=config.slide,
        name=algorithm_name.upper(),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Figures 5-7: IC vs SIC over β
# ---------------------------------------------------------------------------

def fig5_6_7(
    scale: Scale = Scale.SMALL,
    datasets: Sequence[str] = DATASETS,
    betas: Sequence[float] = BETA_GRID,
    seed: int = 7,
) -> Dict[str, ExperimentTable]:
    """One β sweep yielding Figures 5 (value), 6 (checkpoints), 7 (rate)."""
    value = ExperimentTable(
        "Figure 5: influence value vs beta (IC vs SIC)",
        ["dataset", "beta", "algorithm", "influence_value"],
    )
    checkpoints = ExperimentTable(
        "Figure 6: number of checkpoints vs beta (IC vs SIC)",
        ["dataset", "beta", "algorithm", "checkpoints"],
    )
    throughput = ExperimentTable(
        "Figure 7: throughput vs beta (IC vs SIC)",
        ["dataset", "beta", "algorithm", "throughput"],
    )
    for dataset in datasets:
        for beta in betas:
            config = make_config(dataset, scale, beta=beta, seed=seed)
            for algorithm in ("ic", "sic"):
                result = _run(config, algorithm)
                label = algorithm.upper()
                value.add_row(dataset, beta, label, result.mean_influence_value)
                checkpoints.add_row(dataset, beta, label, result.mean_checkpoints)
                throughput.add_row(dataset, beta, label, result.throughput)
    return {"fig5": value, "fig6": checkpoints, "fig7": throughput}


def fig5(**kwargs) -> ExperimentTable:
    """Figure 5: influence values of IC and SIC with varying β."""
    return fig5_6_7(**kwargs)["fig5"]


def fig6(**kwargs) -> ExperimentTable:
    """Figure 6: checkpoints maintained by IC and SIC with varying β."""
    return fig5_6_7(**kwargs)["fig6"]


def fig7(**kwargs) -> ExperimentTable:
    """Figure 7: throughputs of IC and SIC with varying β."""
    return fig5_6_7(**kwargs)["fig7"]


# ---------------------------------------------------------------------------
# Figures 8-9: all approaches over k
# ---------------------------------------------------------------------------

def fig8_9(
    scale: Scale = Scale.SMALL,
    datasets: Sequence[str] = DATASETS,
    ks: Sequence[int] = K_GRID,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    mc_rounds: int = 100,
    quality_every: int = 4,
    seed: int = 7,
) -> Dict[str, ExperimentTable]:
    """One k sweep yielding Figures 8 (MC quality) and 9 (throughput)."""
    quality = ExperimentTable(
        "Figure 8: solution quality (MC spread under WC) vs k",
        ["dataset", "k", "algorithm", "spread"],
    )
    throughput = ExperimentTable(
        "Figure 9: throughput vs k",
        ["dataset", "k", "algorithm", "throughput"],
    )
    for dataset in datasets:
        for k in ks:
            config = make_config(dataset, scale, k=k, seed=seed)
            for algorithm in algorithms:
                result = _run(
                    config,
                    algorithm,
                    evaluate_quality=True,
                    mc_rounds=mc_rounds,
                    quality_every=quality_every,
                )
                label = algorithm.upper()
                quality.add_row(dataset, k, label, result.mean_quality)
                throughput.add_row(dataset, k, label, result.throughput)
    return {"fig8": quality, "fig9": throughput}


def fig8(**kwargs) -> ExperimentTable:
    """Figure 8: solution qualities of all approaches with varying k."""
    return fig8_9(**kwargs)["fig8"]


def fig9(**kwargs) -> ExperimentTable:
    """Figure 9: throughputs of all approaches with varying k."""
    return fig8_9(**kwargs)["fig9"]


# ---------------------------------------------------------------------------
# Figures 10-12: scalability sweeps
# ---------------------------------------------------------------------------

def fig10(
    scale: Scale = Scale.SMALL,
    datasets: Sequence[str] = DATASETS,
    factors: Sequence[float] = N_FACTORS,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    seed: int = 7,
) -> ExperimentTable:
    """Figure 10: throughput with varying window size N."""
    table = ExperimentTable(
        "Figure 10: throughput vs window size N",
        ["dataset", "window_size", "algorithm", "throughput"],
    )
    for dataset in datasets:
        base = make_config(dataset, scale, seed=seed)
        for factor in factors:
            # Table 4 varies N with L held at its default, so IC's
            # checkpoint population ceil(N/L) grows with the window.
            window = max(base.slide, int(base.window_size * factor))
            config = base.with_overrides(window_size=window)
            for algorithm in algorithms:
                result = _run(config, algorithm)
                table.add_row(dataset, window, algorithm.upper(), result.throughput)
    return table


def fig11(
    scale: Scale = Scale.SMALL,
    datasets: Sequence[str] = DATASETS,
    fractions: Sequence[float] = L_FRACTIONS,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    seed: int = 7,
) -> ExperimentTable:
    """Figure 11: throughput with varying slide length L."""
    table = ExperimentTable(
        "Figure 11: throughput vs slide length L",
        ["dataset", "slide", "algorithm", "throughput"],
    )
    for dataset in datasets:
        base = make_config(dataset, scale, seed=seed)
        for fraction in fractions:
            slide = max(1, int(base.window_size * fraction))
            config = base.with_overrides(slide=slide)
            for algorithm in algorithms:
                result = _run(config, algorithm)
                table.add_row(dataset, slide, algorithm.upper(), result.throughput)
    return table


def fig12(
    scale: Scale = Scale.SMALL,
    datasets: Sequence[str] = ("syn-o", "syn-n"),
    factors: Sequence[float] = U_FACTORS,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    seed: int = 7,
) -> ExperimentTable:
    """Figure 12: throughput with varying user-universe size |U|."""
    table = ExperimentTable(
        "Figure 12: throughput vs number of users |U|",
        ["dataset", "n_users", "algorithm", "throughput"],
    )
    for dataset in datasets:
        base = make_config(dataset, scale, seed=seed)
        for factor in factors:
            users = max(100, int(base.n_users * factor))
            config = base.with_overrides(n_users=users)
            for algorithm in algorithms:
                result = _run(config, algorithm)
                table.add_row(dataset, users, algorithm.upper(), result.throughput)
    return table


# ---------------------------------------------------------------------------
# Tables 2-3
# ---------------------------------------------------------------------------

def table2(
    scale: Scale = Scale.SMALL,
    dataset: str = "syn-n",
    oracles: Sequence[str] = ("sieve", "threshold", "blog_watch", "mkc"),
    seed: int = 7,
) -> ExperimentTable:
    """Table 2 ablation: the four checkpoint oracles inside SIC."""
    table = ExperimentTable(
        "Table 2 (ablation): checkpoint oracles inside SIC",
        ["oracle", "influence_value", "throughput", "checkpoints"],
    )
    for oracle in oracles:
        config = make_config(dataset, scale, seed=seed, oracle=oracle)
        result = _run(config, "sic")
        table.add_row(
            oracle,
            result.mean_influence_value,
            result.throughput,
            result.mean_checkpoints,
        )
    return table


def table3(
    scale: Scale = Scale.SMALL,
    datasets: Sequence[str] = DATASETS,
    seed: int = 7,
) -> ExperimentTable:
    """Table 3: dataset statistics (scaled surrogates)."""
    from repro.datasets.stats import stream_statistics

    table = ExperimentTable(
        "Table 3: statistics on datasets",
        ["dataset", "users", "actions", "resp_dist", "avg_depth"],
    )
    for dataset in datasets:
        config = make_config(dataset, scale, seed=seed)
        stats = stream_statistics(make_stream(config))
        table.add_row(
            dataset,
            stats.users,
            stats.actions,
            stats.mean_response_distance,
            stats.mean_depth,
        )
    return table
