"""Experiment harness: configs, runner, metrics, per-figure regenerators."""

from repro.experiments.chaos import ChaosReport, chaos_run
from repro.experiments.config import DATASETS, ExperimentConfig, Scale, make_config
from repro.experiments.metrics import StreamEvaluator, ThroughputMeter
from repro.experiments.recovery import CrashRecoveryReport, crash_recovery_run
from repro.experiments.reporting import ExperimentTable, format_table
from repro.experiments.runner import (
    RunResult,
    build_algorithm,
    make_stream,
    run_algorithm,
)

__all__ = [
    "DATASETS",
    "ChaosReport",
    "chaos_run",
    "CrashRecoveryReport",
    "ExperimentConfig",
    "ExperimentTable",
    "RunResult",
    "Scale",
    "StreamEvaluator",
    "ThroughputMeter",
    "build_algorithm",
    "crash_recovery_run",
    "format_table",
    "make_config",
    "make_stream",
    "run_algorithm",
]
