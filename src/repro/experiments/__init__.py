"""Experiment harness: configs, runner, metrics, per-figure regenerators."""

from repro.experiments.config import DATASETS, ExperimentConfig, Scale, make_config
from repro.experiments.metrics import StreamEvaluator, ThroughputMeter
from repro.experiments.reporting import ExperimentTable, format_table
from repro.experiments.runner import (
    RunResult,
    build_algorithm,
    make_stream,
    run_algorithm,
)

__all__ = [
    "DATASETS",
    "ExperimentConfig",
    "ExperimentTable",
    "RunResult",
    "Scale",
    "StreamEvaluator",
    "ThroughputMeter",
    "build_algorithm",
    "format_table",
    "make_config",
    "make_stream",
    "run_algorithm",
]
