"""Crash/recovery scenario: kill a streaming engine mid-run and resume.

The durability plane's promise is behavioural, so it gets a first-class
experiment scenario rather than only unit tests: :func:`crash_recovery_run`
drives an algorithm through a :class:`~repro.persistence.engine.RecoverableEngine`,
"kills" it at a chosen slide (dropping every in-memory structure — exactly
the state a SIGKILL leaves behind, since slides are WAL-fsynced before
processing), restores from the state directory, finishes the stream, and
scores the outcome:

* **identical** — does every post-recovery ``query()`` answer (time,
  seeds, exact value) match an uninterrupted run?
* **bounded recovery** — how many WAL-tail slides did the restore replay
  (vs. the whole stream), and how long did restore + replay take?

Used by the CI recovery smoke step and the ``snapshot_restore`` section of
``scripts/bench_smoke.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm
from repro.core.stream import batched
from repro.persistence.engine import RecoverableEngine

__all__ = ["CrashRecoveryReport", "crash_recovery_run"]


@dataclass(frozen=True)
class CrashRecoveryReport:
    """Outcome of one kill-and-resume scenario.

    Attributes:
        name: Algorithm label.
        slides_total: Slides in the full stream.
        kill_at_slide: Slide after which the crash was simulated.
        replayed_slides: WAL-tail slides the restore re-processed (the
            bounded-recovery witness: equals the distance to the last
            snapshot, not the stream length).
        snapshot_count: Snapshots present at recovery time.
        restore_seconds: Wall time of restore + WAL-tail replay.
        identical: True when every post-recovery answer matched the
            uninterrupted run exactly.
        first_divergence: Slide index of the first mismatch (None when
            identical).
    """

    name: str
    slides_total: int
    kill_at_slide: int
    replayed_slides: int
    snapshot_count: int
    restore_seconds: float
    identical: bool
    first_divergence: Optional[int]


def crash_recovery_run(
    factory: Callable[[], SIMAlgorithm],
    stream: Iterable[Action],
    slide: int,
    kill_at_slide: int,
    state_dir,
    snapshot_every: int = 8,
    fsync: bool = True,
    name: str = "",
) -> CrashRecoveryReport:
    """Kill an engine at slide ``kill_at_slide``, resume, and compare.

    Args:
        factory: Zero-argument constructor of the algorithm under test
            (called for the uninterrupted reference run, the doomed run,
            and — on a cold state directory — never again).
        stream: The action stream (consumed once, materialised).
        slide: Actions per window slide.
        kill_at_slide: Slides processed before the simulated crash
            (must be in ``[1, slides_total)``).
        state_dir: Durable state directory for the doomed + resumed runs.
        snapshot_every: Snapshot cadence of the doomed run.
        fsync: Force WAL appends to stable storage (disable to time the
            pure software path).
        name: Report label (defaults to the algorithm class name).

    Returns:
        A :class:`CrashRecoveryReport`; ``identical`` is the scenario's
        pass/fail verdict.
    """
    batches: List[List[Action]] = [list(b) for b in batched(stream, slide)]
    if not 1 <= kill_at_slide < len(batches):
        raise ValueError(
            f"kill_at_slide must be in [1, {len(batches) - 1}], "
            f"got {kill_at_slide}"
        )
    reference = factory()
    expected = []
    for batch in batches:
        reference.process(batch)
        expected.append(reference.query())

    doomed = RecoverableEngine.open(
        state_dir, factory, snapshot_every=snapshot_every, fsync=fsync
    )
    for batch in batches[:kill_at_slide]:
        doomed.process(batch)
    # Simulated SIGKILL: drop all in-memory state without a final snapshot.
    doomed.close(snapshot=False)

    started = time.perf_counter()
    restored = RecoverableEngine.open(
        state_dir, factory, snapshot_every=snapshot_every, fsync=fsync
    )
    restore_seconds = time.perf_counter() - started
    snapshot_count = len(restored.store.snapshots.sequences())

    first_divergence: Optional[int] = None
    for index, batch in enumerate(batches[kill_at_slide:], start=kill_at_slide):
        restored.process(batch)
        if restored.query() != expected[index] and first_divergence is None:
            first_divergence = index
    restored.close(snapshot=False)

    return CrashRecoveryReport(
        name=name or type(reference).__name__,
        slides_total=len(batches),
        kill_at_slide=kill_at_slide,
        replayed_slides=restored.replayed_slides,
        snapshot_count=snapshot_count,
        restore_seconds=restore_seconds,
        identical=first_divergence is None,
        first_divergence=first_divergence,
    )
