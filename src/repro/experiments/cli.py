"""``repro-experiments`` — regenerate the paper's figures from the shell.

Examples::

    repro-experiments table3
    repro-experiments fig7 --scale small --datasets syn-n
    repro-experiments fig9 --datasets twitter --csv out.csv
    repro-experiments all --scale small

Every command prints the figure as an aligned text table (the paper's plots
as series); ``--csv`` additionally writes machine-readable output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import figures
from repro.experiments.config import DATASETS, Scale

__all__ = ["main", "build_parser"]

_COMMANDS = (
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "table3",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures/tables of 'Real-Time Influence "
            "Maximization on Dynamic Social Streams' (VLDB 2017)."
        ),
    )
    parser.add_argument("command", choices=_COMMANDS, help="artefact to regenerate")
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.SMALL.value,
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=list(DATASETS),
        default=None,
        help="restrict to these datasets (default: the figure's own set)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="stream generation seed"
    )
    parser.add_argument(
        "--csv", type=str, default=None, help="also write the table(s) as CSV"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each figure as an ASCII line chart",
    )
    return parser


def _render_charts(table) -> str:
    """ASCII charts for a figure table (one per dataset), or ''. """
    headers = table.headers
    if len(headers) != 4 or headers[2] != "algorithm":
        return ""
    x, y = headers[1], headers[3]
    blocks = []
    for dataset in sorted(set(table.column("dataset"))):
        try:
            chart = table.chart(x, y, "algorithm", filters={"dataset": dataset})
        except ValueError:
            continue
        blocks.append(f"[{dataset}] {y} vs {x}\n{chart}")
    return "\n\n".join(blocks)


def _tables_for(command: str, scale: Scale, datasets, seed: int) -> List:
    kwargs = {"scale": scale, "seed": seed}
    if datasets:
        kwargs["datasets"] = tuple(datasets)
    if command in ("fig5", "fig6", "fig7"):
        return [figures.fig5_6_7(**kwargs)[command]]
    if command in ("fig8", "fig9"):
        return [figures.fig8_9(**kwargs)[command]]
    if command == "fig10":
        return [figures.fig10(**kwargs)]
    if command == "fig11":
        return [figures.fig11(**kwargs)]
    if command == "fig12":
        return [figures.fig12(**kwargs)]
    if command == "table2":
        kwargs.pop("datasets", None)
        return [figures.table2(scale=scale, seed=seed)]
    if command == "table3":
        return [figures.table3(**kwargs)]
    if command == "all":
        tables = list(fig5_6_7_tables := figures.fig5_6_7(**kwargs).values())
        tables.extend(figures.fig8_9(**kwargs).values())
        tables.append(figures.fig10(**kwargs))
        tables.append(figures.fig11(**kwargs))
        fig12_kwargs = dict(kwargs)
        if datasets:
            fig12_kwargs["datasets"] = tuple(
                d for d in datasets if d.startswith("syn")
            ) or ("syn-o", "syn-n")
        tables.append(figures.fig12(**fig12_kwargs))
        tables.append(figures.table2(scale=scale, seed=seed))
        tables.append(figures.table3(**kwargs))
        return tables
    raise KeyError(command)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    scale = Scale(args.scale)
    tables = _tables_for(args.command, scale, args.datasets, args.seed)
    for table in tables:
        print(table.render())
        print()
        if args.chart:
            charts = _render_charts(table)
            if charts:
                print(charts)
                print()
    if args.csv:
        with open(args.csv, "w") as handle:
            for table in tables:
                handle.write(f"# {table.title}\n")
                handle.write(table.to_csv())
                handle.write("\n")
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
