"""Chaos scenario: scripted shard faults under supervision, scored.

The supervision plane's promise is also behavioural — a shard worker
that dies or hangs mid-stream is healed in place without the caller ever
seeing an error, and the answers converge to exactly the uninterrupted
run.  :func:`chaos_run` drives a :class:`~repro.sharding.ShardedEngine`
through a stream with a deterministic :class:`~repro.faults.FaultPlan`
armed in its workers, counts every caller-visible
:class:`~repro.sharding.ShardingError`, and compares the final merged
top-k against a fault-free reference run of the same topology:

* **converged** — identical final answer (time, value, seed set)?
* **self-healed** — zero caller-visible errors, and how many in-place
  restarts / how long the degraded windows were.

Used by the CI chaos smoke step and the ``chaos_recovery`` section of
``scripts/bench_smoke.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.actions import Action
from repro.core.stream import batched
from repro.faults import FaultPlan
from repro.sharding.engine import ShardedEngine, ShardingError

__all__ = ["ChaosReport", "chaos_run"]


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one scripted-fault run.

    Attributes:
        name: Algorithm label.
        shards: Shard engines behind the facade.
        backend: Worker backend the faults were injected into.
        slides_total: Slides in the stream.
        faults: Scripted faults in the plan.
        caller_errors: ``ShardingError`` escalations the driving loop
            saw (0 = the supervisor absorbed every fault).
        restarts: In-place shard restarts the supervisor performed.
        escalations: Heal attempts that exhausted the retry budget.
        degraded_windows: Down→up cycles the degraded flag went through.
        degraded_seconds: Total wall time any shard was down.
        heal_seconds: Wall time of the last successful heal (restore +
            WAL-tail replay + suffix redelivery).
        wall_seconds: Wall time of the whole faulted run.
        identical: True when the final merged answer matched the
            fault-free reference exactly.
    """

    name: str
    shards: int
    backend: str
    slides_total: int
    faults: int
    caller_errors: int
    restarts: int
    escalations: int
    degraded_windows: int
    degraded_seconds: float
    heal_seconds: float
    wall_seconds: float
    identical: bool


def chaos_run(
    factory: Callable,
    stream: Iterable[Action],
    slide: int,
    shards: int,
    plan: FaultPlan,
    state_dir,
    backend: str = "process",
    snapshot_every: int = 4,
    retries: int = 3,
    call_timeout: float = 30.0,
    fsync: bool = False,
    name: str = "",
) -> ChaosReport:
    """Run a sharded engine under a scripted fault plan and score it.

    Args:
        factory: One-argument shard-engine constructor (receives the
            shard assignment, ``None`` for the reference topology) — the
            same recipe :meth:`~repro.sharding.ShardedEngine.open` takes.
        stream: The action stream (consumed once, materialised).
        slide: Actions per window slide.
        shards: Shard engines to partition influencers over.
        plan: The deterministic fault plan armed in the workers.
        state_dir: Durable state root (required — healing replays the
            failed shard's ``shard-<i>/`` snapshot + WAL).
        backend: Worker backend to inject into (``process`` exercises
            real SIGKILL semantics).
        snapshot_every: Per-shard snapshot cadence.
        retries: Supervisor restart budget per incident.
        call_timeout: Seconds before a silent shard is declared hung.
        fsync: Force per-append fsync in the shard WALs.
        name: Report label (defaults to the algorithm class name).

    Returns:
        A :class:`ChaosReport`; ``identical and caller_errors == 0`` is
        the scenario's pass/fail verdict.
    """
    if state_dir is None:
        raise ValueError("chaos_run needs a state_dir (healing replays it)")
    batches = [list(b) for b in batched(stream, slide)]
    label = name or type(factory(None)).__name__

    reference = ShardedEngine.open(factory, shards, backend="serial")
    try:
        for batch in batches:
            reference.process(batch)
        expected = reference.query()
    finally:
        reference.close()

    engine = ShardedEngine.open(
        factory,
        shards,
        state_dir=state_dir,
        backend=backend,
        snapshot_every=snapshot_every,
        fsync=fsync,
        retries=retries,
        call_timeout=call_timeout,
        fault_plan=plan,
    )
    caller_errors = 0
    started = time.perf_counter()
    observed = None
    try:
        for batch in batches:
            try:
                engine.process(batch)
            except ShardingError:
                caller_errors += 1
        try:
            observed = engine.query()
        except ShardingError:
            caller_errors += 1
        stats = engine.supervision_stats()
    finally:
        engine.close()
    wall_seconds = time.perf_counter() - started

    identical = (
        observed is not None
        and observed.time == expected.time
        and observed.value == expected.value
        and sorted(observed.seeds) == sorted(expected.seeds)
    )
    return ChaosReport(
        name=label,
        shards=shards,
        backend=backend,
        slides_total=len(batches),
        faults=len(plan),
        caller_errors=caller_errors,
        restarts=stats["restarts"],
        escalations=stats["escalations"],
        degraded_windows=stats["degraded_windows"],
        degraded_seconds=stats["degraded_seconds"],
        heal_seconds=stats["last_heal_seconds"],
        wall_seconds=wall_seconds,
        identical=identical,
    )
