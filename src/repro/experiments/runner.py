"""The continuous-query loop driving any SIM algorithm over a stream.

One :func:`run_algorithm` call reproduces the paper's measurement protocol
(Section 6.1): stream the dataset in slides of ``L`` actions; per slide,
time the approach's maintenance *and* answer retrieval (the recompute-on-
query baselines do their work at query time), then score the returned seeds
against ground truth — the exact window influence value always, the
Monte-Carlo WC spread when requested.

Results are averaged over all measured windows, matching "the average
influence spread of all windows" quality metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm
from repro.core.stream import batched
from repro.experiments.metrics import StreamEvaluator, ThroughputMeter

__all__ = ["RunResult", "run_algorithm", "build_algorithm", "make_stream"]


@dataclass(frozen=True)
class RunResult:
    """Aggregated measurements of one (algorithm, stream) run.

    Attributes:
        name: Algorithm label.
        throughput: Actions/second over all timed slides.
        mean_influence_value: Average exact ``|I_t(S)|`` of returned seeds.
        mean_quality: Average MC spread (None unless quality evaluation on).
        mean_checkpoints: Average live checkpoints (None for baselines).
        queries: Number of measured windows.
        elapsed: Total timed seconds.
    """

    name: str
    throughput: float
    mean_influence_value: float
    mean_quality: Optional[float]
    mean_checkpoints: Optional[float]
    queries: int
    elapsed: float


def run_algorithm(
    algorithm: SIMAlgorithm,
    stream: Iterable[Action],
    slide: int,
    name: str = "",
    evaluate_quality: bool = False,
    mc_rounds: int = 200,
    quality_every: int = 1,
    warmup_fraction: float = 0.25,
    mc_seed: int = 97,
) -> RunResult:
    """Drive ``algorithm`` over ``stream`` and measure it.

    Args:
        algorithm: The SIM processor under test.
        stream: The action stream.
        slide: Actions per window slide (``L``).
        name: Label for reporting (defaults to the class name).
        evaluate_quality: Also compute the Monte-Carlo WC spread.
        mc_rounds: MC rounds per quality evaluation.
        quality_every: Evaluate quality every this many slides (MC is the
            expensive part; the paper evaluates per window — keep 1 for
            fidelity, raise for speed).
        warmup_fraction: Fraction of the stream consumed before measurement
            starts, so windows are full and checkpoint populations are in
            steady state.
        mc_seed: RNG seed for the quality simulations.
    """
    if slide <= 0:
        raise ValueError(f"slide must be positive, got {slide}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup fraction must be in [0, 1), got {warmup_fraction}")
    label = name or type(algorithm).__name__
    evaluator = StreamEvaluator(algorithm.window_size)
    meter = ThroughputMeter()
    value_sum = 0.0
    quality_sum = 0.0
    quality_count = 0
    checkpoint_sum = 0.0
    checkpoint_count = 0
    queries = 0

    batches = list(batched(stream, slide))
    warmup = int(len(batches) * warmup_fraction)
    for i, batch in enumerate(batches):
        evaluator.feed(batch)
        measuring = i >= warmup
        if measuring:
            meter.start()
        algorithm.process(batch)
        answer = algorithm.query()
        if measuring:
            meter.stop(len(batch))
            queries += 1
            value_sum += evaluator.influence_value(answer.seeds)
            if evaluate_quality and queries % quality_every == 0:
                quality_sum += evaluator.quality(
                    answer.seeds, mc_rounds=mc_rounds, seed=mc_seed + i
                )
                quality_count += 1
            count = getattr(algorithm, "checkpoint_count", None)
            if count is not None:
                checkpoint_sum += count
                checkpoint_count += 1

    return RunResult(
        name=label,
        throughput=meter.throughput,
        mean_influence_value=(value_sum / queries) if queries else 0.0,
        mean_quality=(quality_sum / quality_count) if quality_count else None,
        mean_checkpoints=(
            checkpoint_sum / checkpoint_count if checkpoint_count else None
        ),
        queries=queries,
        elapsed=meter.elapsed,
    )


def build_algorithm(name: str, config) -> SIMAlgorithm:
    """Instantiate one of the paper's five approaches from a config.

    Accepted names: ``sic``, ``ic``, ``greedy``, ``imm``, ``ubi``.
    """
    from repro.baselines.adapters import IMMAlgorithm, UBIAlgorithm
    from repro.core.greedy import WindowedGreedy
    from repro.core.ic import InfluentialCheckpoints
    from repro.core.sic import SparseInfluentialCheckpoints

    key = name.lower()
    # columnar=False: the figure regenerators reproduce the *paper's*
    # IC-vs-SIC comparison, whose time/space tradeoff lives in the
    # per-checkpoint oracle plane (Fig. 7's "SIC faster than IC" follows
    # from SIC maintaining fewer checkpoints).  The columnar kernel
    # collapses per-checkpoint oracle cost and, at experiment scales,
    # erases that ordering — its own speedup is tracked separately by
    # scripts/bench_smoke.py's ic_n1000_l1 columnar-vs-object rows.
    if key == "sic":
        return SparseInfluentialCheckpoints(
            window_size=config.window_size,
            k=config.k,
            beta=config.beta,
            oracle=config.oracle,
            columnar=False,
        )
    if key == "ic":
        return InfluentialCheckpoints(
            window_size=config.window_size,
            k=config.k,
            beta=config.beta,
            oracle=config.oracle,
            columnar=False,
        )
    if key == "greedy":
        # lazy=False: the paper's baseline is the naive O(k·|U|) greedy.
        return WindowedGreedy(
            window_size=config.window_size, k=config.k, lazy=False
        )
    if key == "imm":
        return IMMAlgorithm(
            window_size=config.window_size,
            k=config.k,
            seed=config.seed,
            max_rr_sets=5_000,
        )
    if key == "ubi":
        return UBIAlgorithm(
            window_size=config.window_size,
            k=config.k,
            rr_samples=1_000,
            seed=config.seed,
        )
    raise KeyError(f"unknown algorithm {name!r}")


def make_stream(config) -> Iterable[Action]:
    """Instantiate the dataset named by ``config.dataset`` at config size."""
    from repro.datasets.surrogates import reddit_like, twitter_like
    from repro.datasets.synthetic import syn_n, syn_o

    makers: dict = {
        "reddit": reddit_like,
        "twitter": twitter_like,
        "syn-o": syn_o,
        "syn-n": syn_n,
    }
    maker = makers[config.dataset]
    return maker(
        n_users=config.n_users, n_actions=config.n_actions, seed=config.seed
    )
