"""Comparison baselines: IMM (static) and UBI (dynamic) + SIM adapters."""

from repro.baselines.adapters import IMMAlgorithm, UBIAlgorithm
from repro.baselines.imm import IMMResult, imm_select
from repro.baselines.ubi import UpperBoundInterchange

__all__ = [
    "IMMAlgorithm",
    "IMMResult",
    "UBIAlgorithm",
    "UpperBoundInterchange",
    "imm_select",
]
