"""IMM — Influence Maximization via Martingales (Tang, Shi, Xiao; SIGMOD 2015).

The state-of-the-art static IM baseline of Section 6.1.  IMM works in two
phases over RR sets (see :mod:`repro.diffusion.rr_sets`):

1. **Sampling** — estimate a lower bound ``LB`` of the optimum ``OPT_k`` by
   testing geometrically decreasing guesses ``x = n/2^i`` against greedy
   coverage of progressively larger RR collections (Algorithm 2 of the IMM
   paper), then draw ``θ = λ*/LB`` RR sets, where ``λ*`` is the martingale
   bound ensuring an ``(1 − 1/e − ε)`` guarantee with probability
   ``1 − 1/n^ℓ``.

2. **Node selection** — greedy maximum coverage over the sampled RR sets.

The paper runs the authors' C++ release with ``ε = 0.5, ℓ = 1``; this is a
faithful re-implementation with one practical addition: ``max_rr_sets``
caps the sample size so that pure-Python runs stay tractable on large
windows (the cap is reported in :class:`IMMResult` so experiments can tell
when the theoretical θ was truncated).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.diffusion.rr_sets import coverage_greedy, generate_rr_sets
from repro.graphs.graph import DiGraph

__all__ = ["IMMResult", "imm_select"]


@dataclass(frozen=True, slots=True)
class IMMResult:
    """Outcome of one IMM invocation.

    Attributes:
        seeds: Selected seed nodes (at most ``k``).
        spread_estimate: ``n · F(S)`` — the RR-based spread estimate.
        rr_sets_used: Total RR sets sampled across both phases.
        theta: The theoretical sample size θ computed from ``LB``.
        truncated: True when ``max_rr_sets`` capped θ.
    """

    seeds: Tuple[int, ...]
    spread_estimate: float
    rr_sets_used: int
    theta: int
    truncated: bool


def _log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma (stable for large n)."""
    if k < 0 or k > n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def imm_select(
    graph: DiGraph,
    k: int,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: Optional[int] = None,
    max_rr_sets: int = 50_000,
) -> IMMResult:
    """Run IMM on ``graph`` and return seeds with diagnostics.

    Args:
        graph: Influence graph with activation probabilities (WC here).
        k: Number of seeds.
        epsilon: Approximation slack (paper setting 0.5).
        ell: Failure-probability exponent (guarantee holds w.p. 1 − 1/n^ℓ).
        seed: RNG seed.
        max_rr_sets: Practicality cap on the RR-sample size.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    n = graph.node_count
    nodes: List[int] = list(graph.nodes())
    if n == 0:
        return IMMResult((), 0.0, 0, 0, False)
    if n <= k:
        return IMMResult(tuple(nodes), float(n), 0, 0, False)

    rng = random.Random(seed)
    log_n = math.log(n)
    logcnk = _log_binomial(n, k)
    # Adjusted ell keeps the union bound over both phases (IMM Section 4.2).
    ell = ell * (1.0 + math.log(2) / log_n)

    # -- Phase 1: estimate LB (IMM Algorithm 2) ---------------------------
    eps_prime = math.sqrt(2.0) * epsilon
    lambda_prime = (
        (2.0 + 2.0 * eps_prime / 3.0)
        * (logcnk + ell * log_n + math.log(max(math.log2(n), 1.0)))
        * n
        / (eps_prime**2)
    )
    rr_sets: List[Set[int]] = []
    lb = 1.0
    max_level = max(1, int(math.log2(n)))
    for i in range(1, max_level):
        x = n / (2.0**i)
        theta_i = min(int(math.ceil(lambda_prime / x)), max_rr_sets)
        if len(rr_sets) < theta_i:
            rr_sets.extend(generate_rr_sets(graph, theta_i - len(rr_sets), rng))
        seeds_i, covered_i = coverage_greedy(rr_sets, k)
        fraction = covered_i / len(rr_sets) if rr_sets else 0.0
        if n * fraction >= (1.0 + eps_prime) * x:
            lb = n * fraction / (1.0 + eps_prime)
            break
        if theta_i >= max_rr_sets:
            # Cap reached; the current estimate is the best LB available.
            lb = max(lb, n * fraction / (1.0 + eps_prime))
            break

    # -- Phase 2: final sampling + node selection -------------------------
    alpha = math.sqrt(ell * log_n + math.log(2.0))
    beta = math.sqrt((1.0 - 1.0 / math.e) * (logcnk + ell * log_n + math.log(2.0)))
    lambda_star = (
        2.0 * n * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2 / (epsilon**2)
    )
    theta = int(math.ceil(lambda_star / max(lb, 1.0)))
    target = min(theta, max_rr_sets)
    truncated = theta > max_rr_sets
    if len(rr_sets) < target:
        rr_sets.extend(generate_rr_sets(graph, target - len(rr_sets), rng))
    seeds, covered = coverage_greedy(rr_sets, k)
    fraction = covered / len(rr_sets) if rr_sets else 0.0
    return IMMResult(
        seeds=tuple(seeds),
        spread_estimate=n * fraction,
        rr_sets_used=len(rr_sets),
        theta=theta,
        truncated=truncated,
    )
