"""UBI — Upper Bound Interchange (Chen, Song, He, Xie; SDM 2015).

The dynamic-IM baseline of Section 6.1.  UBI maintains a seed set across a
chronological sequence of influence graphs ``{G_1, G_2, ...}`` instead of
recomputing from scratch: after each graph update it *interchanges* a
non-seed ``v`` for a seed ``u`` whenever the spread gain is substantial —
at least ``γ`` of the current spread (the paper keeps ``γ = 0.01``).
Candidate ``v``'s are pruned through *upper bounds* on their marginal gain:
by submodularity a node's singleton spread ``σ({v})`` upper-bounds its
marginal contribution to any set, so candidates whose bound cannot clear the
interchange threshold are skipped without evaluation.

Spread values are estimated on a per-update RR-set collection (the same
RIS identity used by IMM), which keeps every ``σ(·)`` evaluation a cheap
coverage count.  This mirrors the published algorithm's structure
(upper-bound pruning + interchange with threshold γ); the original's
incremental bound maintenance across graph deltas is replaced by per-update
re-sampling, which is the natural fit for our window-rebuilt graphs.

The quality caveat reported in the paper — UBI degrades for larger ``k``
because a bigger seed set makes the γ-relative threshold harder to clear,
delaying interchanges — is inherent to this scheme and reproduces here.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.diffusion.rr_sets import coverage_greedy, generate_rr_sets
from repro.graphs.graph import DiGraph

__all__ = ["UpperBoundInterchange"]


class UpperBoundInterchange:
    """Seed-set tracking over evolving influence graphs."""

    def __init__(
        self,
        k: int,
        gamma: float = 0.01,
        rr_samples: int = 2_000,
        seed: Optional[int] = None,
        max_interchanges_per_update: int = 16,
        max_candidates: int = 64,
    ):
        """
        Args:
            k: Seed-set size.
            gamma: Interchange threshold as a fraction of the current
                spread (paper: 0.01).
            rr_samples: RR sets drawn per graph update for spread estimates.
            seed: RNG seed.
            max_interchanges_per_update: Safety bound on the local search.
            max_candidates: Upper-bound pruning cutoff — only this many of
                the highest-bound candidates are evaluated per interchange
                round (keeps updates polynomially cheap on dense windows).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if gamma <= 0.0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if rr_samples <= 0:
            raise ValueError(f"rr_samples must be positive, got {rr_samples}")
        self._k = k
        self._gamma = gamma
        self._rr_samples = rr_samples
        self._rng = random.Random(seed)
        self._max_swaps = max_interchanges_per_update
        self._max_candidates = max_candidates
        self._seeds: Set[int] = set()
        self._initialised = False
        self._interchanges = 0

    @property
    def seeds(self) -> frozenset:
        """The currently maintained seed set."""
        return frozenset(self._seeds)

    @property
    def interchanges_performed(self) -> int:
        """Total interchanges across all updates (diagnostic)."""
        return self._interchanges

    def update(self, graph: DiGraph) -> frozenset:
        """Absorb a new influence graph ``G_t`` and return the seeds."""
        n = graph.node_count
        if n == 0:
            return frozenset(self._seeds)
        rr_sets = generate_rr_sets(graph, self._rr_samples, self._rng)
        membership = self._build_membership(rr_sets)
        if not self._initialised or not self._seeds:
            seeds, _covered = coverage_greedy(rr_sets, self._k)
            self._seeds = set(seeds)
            self._initialised = True
            return frozenset(self._seeds)
        # Drop seeds that vanished from the graph, refill greedily.
        self._seeds = {u for u in self._seeds if u in graph}
        self._refill(rr_sets, membership)
        self._interchange(graph, rr_sets, membership, n)
        return frozenset(self._seeds)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _build_membership(rr_sets: Sequence[Set[int]]) -> Dict[int, List[int]]:
        membership: Dict[int, List[int]] = {}
        for idx, rr in enumerate(rr_sets):
            for node in rr:
                membership.setdefault(node, []).append(idx)
        return membership

    def _covered_count(
        self, seeds: Set[int], membership: Dict[int, List[int]], total: int
    ) -> int:
        covered = set()
        for u in seeds:
            covered.update(membership.get(u, ()))
        return len(covered)

    def _refill(
        self, rr_sets: Sequence[Set[int]], membership: Dict[int, List[int]]
    ) -> None:
        """Top the seed set back up to ``k`` with greedy additions."""
        while len(self._seeds) < self._k and membership:
            covered: Set[int] = set()
            for u in self._seeds:
                covered.update(membership.get(u, ()))
            best, best_gain = None, 0
            for node, idxs in membership.items():
                if node in self._seeds:
                    continue
                gain = sum(1 for i in idxs if i not in covered)
                if gain > best_gain:
                    best, best_gain = node, gain
            if best is None:
                break
            self._seeds.add(best)

    def _interchange(
        self,
        graph: DiGraph,
        rr_sets: Sequence[Set[int]],
        membership: Dict[int, List[int]],
        n: int,
    ) -> None:
        """Upper-bound-pruned interchange local search."""
        total = len(rr_sets)
        if total == 0:
            return
        scale = n / total
        for _ in range(self._max_swaps):
            current_cover = self._covered_count(self._seeds, membership, total)
            threshold_cover = self._gamma * current_cover
            # Upper bounds: singleton coverage counts, descending.
            candidates = sorted(
                (
                    (len(idxs), node)
                    for node, idxs in membership.items()
                    if node not in self._seeds
                ),
                reverse=True,
            )
            performed = False
            for bound, v in candidates[: self._max_candidates]:
                if bound <= threshold_cover:
                    break  # no remaining candidate can clear the threshold
                for u in list(self._seeds):
                    swapped = (self._seeds - {u}) | {v}
                    new_cover = self._covered_count(swapped, membership, total)
                    if new_cover - current_cover >= threshold_cover:
                        self._seeds = swapped
                        self._interchanges += 1
                        performed = True
                        break
                if performed:
                    break
            if not performed:
                return

    def spread_estimate(self, graph: DiGraph, rr_samples: Optional[int] = None) -> float:
        """RR-based spread estimate of the current seeds on ``graph``."""
        samples = rr_samples if rr_samples is not None else self._rr_samples
        rr_sets = generate_rr_sets(graph, samples, self._rng)
        if not rr_sets:
            return 0.0
        membership = self._build_membership(rr_sets)
        covered = self._covered_count(self._seeds, membership, len(rr_sets))
        return graph.node_count * covered / len(rr_sets)
