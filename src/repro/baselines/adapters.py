"""Adapters exposing the graph baselines as continuous SIM processors.

Section 6.1's protocol: at each window slide the influence graph ``G_t`` is
rebuilt from the window's influence relationships (WC probabilities), then

* **IMM** is re-run from scratch on ``G_t`` (a static method: every update
  requires a complete rerun — the cost the paper's Figures 9-12 expose);
* **UBI** absorbs ``G_t`` as the next graph of its chronological sequence
  and interchanges seeds incrementally.

Both adapters reuse :class:`~repro.core.base.SIMAlgorithm`'s window/forest
plumbing plus the exact windowed influence index, so graph construction is
shared and identical across baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.imm import imm_select
from repro.baselines.ubi import UpperBoundInterchange
from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.diffusion import ActionRecord
from repro.core.influence_index import WindowInfluenceIndex
from repro.graphs.influence_graph import build_influence_graph

__all__ = ["IMMAlgorithm", "UBIAlgorithm"]


class IMMAlgorithm(SIMAlgorithm):
    """Static IMM re-run on every query (the paper's static baseline)."""

    def __init__(
        self,
        window_size: int,
        k: int,
        epsilon: float = 0.5,
        ell: float = 1.0,
        seed: Optional[int] = None,
        max_rr_sets: int = 50_000,
        retention: Optional[int] = None,
    ):
        super().__init__(window_size=window_size, k=k, retention=retention)
        self._epsilon = epsilon
        self._ell = ell
        self._seed = seed
        self._max_rr_sets = max_rr_sets
        self._index = WindowInfluenceIndex()

    @property
    def index(self) -> WindowInfluenceIndex:
        """The exact windowed influence index the graph is built from."""
        return self._index

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        for record in arrived:
            self._index.add(record)
        for record in expired:
            self._index.remove(record)

    def query(self) -> SIMResult:
        """Rebuild ``G_t`` and run IMM from scratch."""
        graph = build_influence_graph(self._index)
        result = imm_select(
            graph,
            self._k,
            epsilon=self._epsilon,
            ell=self._ell,
            seed=self._seed,
            max_rr_sets=self._max_rr_sets,
        )
        return SIMResult(
            time=self.now,
            seeds=frozenset(result.seeds),
            value=result.spread_estimate,
        )


class UBIAlgorithm(SIMAlgorithm):
    """UBI fed the chronological sequence of window influence graphs."""

    def __init__(
        self,
        window_size: int,
        k: int,
        gamma: float = 0.01,
        rr_samples: int = 2_000,
        seed: Optional[int] = None,
        retention: Optional[int] = None,
    ):
        super().__init__(window_size=window_size, k=k, retention=retention)
        self._index = WindowInfluenceIndex()
        self._ubi = UpperBoundInterchange(
            k=k, gamma=gamma, rr_samples=rr_samples, seed=seed
        )
        self._last_spread = 0.0

    @property
    def index(self) -> WindowInfluenceIndex:
        """The exact windowed influence index the graphs are built from."""
        return self._index

    @property
    def tracker(self) -> UpperBoundInterchange:
        """The underlying UBI state (for diagnostics)."""
        return self._ubi

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        for record in arrived:
            self._index.add(record)
        for record in expired:
            self._index.remove(record)
        graph = build_influence_graph(self._index)
        self._ubi.update(graph)
        self._last_spread = self._ubi.spread_estimate(graph)

    def query(self) -> SIMResult:
        """Return the incrementally maintained seeds."""
        return SIMResult(
            time=self.now,
            seeds=self._ubi.seeds,
            value=self._last_spread,
        )
