"""Atomic snapshot files with bounded retention.

A snapshot is one JSON document — the envelope written by
:class:`~repro.persistence.engine.RecoverableEngine` around a framework's
``to_state()`` — stored as ``snapshot-<slideseq>.json``.  Two guarantees:

* **Atomicity.**  Documents are written to a temporary file, fsynced, and
  ``os.replace``d into place, so a crash mid-snapshot leaves either the
  previous snapshot set or the new one — never a half-written file that
  recovery could mistake for state.
* **Retention.**  Only the newest ``keep`` snapshots are kept.  Loading
  prefers the newest parseable document and falls back to older ones when
  the newest is damaged (e.g. storage corruption after the atomic write),
  which is why more than one is retained at all.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Optional, Tuple

from repro.persistence.serialize import (
    SNAPSHOT_FORMAT_VERSION,
    PersistenceError,
)

__all__ = ["SnapshotStore"]


class SnapshotStore:
    """Directory of atomic, retained snapshot documents."""

    _PREFIX = "snapshot-"
    _SUFFIX = ".json"

    def __init__(self, directory, keep: int = 3):
        """
        Args:
            directory: Snapshot directory (created if missing).
            keep: Newest snapshots retained after each save (>= 1).
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._dir = pathlib.Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._keep = keep

    def path_for(self, seq: int) -> pathlib.Path:
        """The file a snapshot of slide ``seq`` lives in."""
        return self._dir / f"{self._PREFIX}{seq:010d}{self._SUFFIX}"

    def sequences(self) -> List[int]:
        """Slide sequence numbers of stored snapshots, oldest first."""
        out = []
        for path in sorted(self._dir.glob(f"{self._PREFIX}*{self._SUFFIX}")):
            stem = path.name[len(self._PREFIX) : -len(self._SUFFIX)]
            try:
                out.append(int(stem))
            except ValueError:
                continue
        return out

    def save(self, seq: int, document: dict) -> pathlib.Path:
        """Atomically write a snapshot document; prune beyond retention."""
        target = self.path_for(seq)
        tmp = target.with_name(target.name + ".tmp")
        payload = json.dumps(document, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        self._fsync_dir()
        for stale in self.sequences()[: -self._keep]:
            self.path_for(stale).unlink(missing_ok=True)
        return target

    def prune(self, keep: int) -> List[int]:
        """Drop all but the newest ``keep`` snapshots; return dropped seqs.

        Explicit retention tightening for ``snapshot prune`` — unlike the
        automatic retention applied on :meth:`save`, this runs without
        writing a new snapshot, so an operator can reclaim space from a
        sealed state dir.

        Raises:
            ValueError: when ``keep`` is below 1 (at least one snapshot
                must survive or the WAL prefix becomes unrecoverable).
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        dropped = self.sequences()[:-keep]
        for seq in dropped:
            self.path_for(seq).unlink(missing_ok=True)
        return dropped

    def load(self, seq: int) -> dict:
        """Load and validate one snapshot document.

        Raises:
            PersistenceError: on unparseable content or an envelope format
                this build does not read.
        """
        path = self.path_for(seq)
        document = self._parse(path)
        if document is None:
            raise PersistenceError(f"unreadable snapshot {path.name}")
        self._check_version(path, document)
        return document

    def load_latest(self) -> Optional[Tuple[int, dict]]:
        """The newest loadable snapshot as ``(seq, document)``, else ``None``.

        Unparseable documents are skipped in favour of older retained
        snapshots (recovery then re-derives the difference from the WAL);
        a format-version mismatch is systemic and raises instead.
        """
        for seq in reversed(self.sequences()):
            path = self.path_for(seq)
            document = self._parse(path)
            if document is None:
                continue
            self._check_version(path, document)
            return seq, document
        return None

    @staticmethod
    def _parse(path: pathlib.Path) -> Optional[dict]:
        """The file's JSON document, or ``None`` when damaged/missing."""
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    @staticmethod
    def _check_version(path: pathlib.Path, document: dict) -> None:
        """Reject envelope formats this build does not read."""
        version = document.get("format")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise PersistenceError(
                f"snapshot {path.name} has format version {version!r}; "
                f"this build reads version {SNAPSHOT_FORMAT_VERSION}"
            )

    def _fsync_dir(self) -> None:
        """Best-effort directory fsync so the rename itself is durable."""
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)
