"""Durable state plane: snapshots + action WAL for resumable streaming.

The frameworks in :mod:`repro.core` are long-running stream processors,
but their state used to live only in process memory — a restart meant
replaying the whole stream.  This package adds the missing database-style
durability subsystem:

* :mod:`repro.persistence.serialize` — shared codecs and the
  algorithm-state dispatch (explicit JSON schemas, no pickle);
* :mod:`repro.persistence.wal` — the append-only action log (JSONL
  segments, fsync-on-slide, rotation, torn-tail truncation);
* :mod:`repro.persistence.snapshots` — atomic write-rename snapshot files
  with bounded retention;
* :mod:`repro.persistence.engine` — :class:`RecoverableEngine`, which
  logs ahead, snapshots every S slides, and on
  :meth:`~repro.persistence.engine.RecoverableEngine.open` restores the
  newest snapshot then replays only the WAL tail — O(tail) recovery with
  answers identical to an uninterrupted run.

Persistence is strictly opt-in: with no state store the engine is a
passthrough and the hot path is untouched.
"""

from repro.persistence.engine import RecoverableEngine, StateStore
from repro.persistence.serialize import (
    SNAPSHOT_FORMAT_VERSION,
    PersistenceError,
    algorithm_from_state,
    algorithm_to_state,
    decode_action,
    encode_action,
)
from repro.persistence.snapshots import SnapshotStore
from repro.persistence.wal import ActionWAL

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "ActionWAL",
    "PersistenceError",
    "RecoverableEngine",
    "SnapshotStore",
    "StateStore",
    "algorithm_from_state",
    "algorithm_to_state",
    "decode_action",
    "encode_action",
]
