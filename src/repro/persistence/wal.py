"""Append-only action WAL: JSONL segments with fsync and rotation.

The write-ahead log is the cheap half of the durability plane: every
window slide is appended — *before* the engine processes it — as one JSON
line.  Recovery then replays the records newer than the latest snapshot,
so a crash costs O(WAL tail) work instead of O(stream).

Two record kinds share a log:

* **Action records** ``{"seq": n, "actions": [[t, u, p], ...]}`` — raw
  slide batches, written by broadcast/single-engine ingest
  (:meth:`ActionWAL.append`).
* **Routed-slide records** ``{"seq": n, "slide": <ResolvedSlide wire>}``
  — pre-resolved influence tuples routed to one shard, written by routed
  sharded ingest (:meth:`ActionWAL.append_resolved`).  The wire document
  is format-versioned (:data:`~repro.core.resolve.RESOLVED_WIRE_VERSION`);
  replay refuses an unknown version instead of guessing.

Both kinds may appear in the same log (a shard migrated from broadcast to
routed ingest keeps its old action records); :meth:`ActionWAL.replay`
yields ``(seq, List[Action])`` for the former and
``(seq, ResolvedSlide)`` for the latter, and consumers dispatch on type.

Design points, all standard WAL practice:

* **Sequenced records.**  Slide sequence numbers are contiguous and
  strictly increasing; :meth:`ActionWAL.replay` verifies contiguity and
  raises :class:`~repro.persistence.serialize.PersistenceError` on gaps
  or mid-log corruption — silent data loss is never an option.
* **fsync per append** (default on): a record that :meth:`ActionWAL.append`
  returned from survives power loss.  ``fsync=False`` trades that for
  throughput when the OS page cache is trusted.
* **Segment rotation.**  Records go to ``wal-<firstseq>.jsonl`` files of
  at most ``segment_records`` records, so retention is cheap: a segment
  whose records are all covered by the oldest retained snapshot is
  deleted whole (:meth:`ActionWAL.prune_through`).
* **Torn-tail tolerance.**  A crash mid-write can leave a partial final
  line.  On open, the tail segment is scanned and truncated back to its
  last complete, parseable record; replay likewise stops cleanly at a
  torn tail.  Only the *final* line of the *final* segment may be torn —
  anywhere else it is corruption and raises.
* **Per-record CRC32.**  Every record carries a ``crc`` checksum of its
  payload, so bit rot that still parses as JSON is caught: a checksum
  mismatch mid-segment raises a :class:`PersistenceError` naming the
  segment and sequence number, while a mismatch on the final line of the
  final segment is treated as a torn tail (truncated, healed by
  redelivery).  Records written before checksums existed carry no ``crc``
  field and replay unchanged.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.resolve import ResolvedSlide
from repro.persistence.serialize import (
    PersistenceError,
    decode_action,
    encode_action,
)

__all__ = ["ActionWAL"]


def _record_payload(record: dict) -> dict:
    """A record's canonical CRC payload (everything but ``crc``).

    Action records keep the exact legacy key order (``seq``, ``actions``)
    so checksums written before routed records existed still verify;
    routed records checksum ``seq`` + the slide wire document.

    Raises:
        KeyError: when the record carries neither payload key (callers
            surface this as a corrupt/torn record).
    """
    if "actions" in record:
        return {"seq": record["seq"], "actions": record["actions"]}
    return {"seq": record["seq"], "slide": record["slide"]}


def _record_crc(payload: dict) -> int:
    """CRC32 of one canonical record payload."""
    encoded = json.dumps(payload, separators=(",", ":"))
    return zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF


def _crc_mismatch(record: dict) -> Optional[int]:
    """The stored-but-wrong ``crc`` of a parsed record, or ``None`` if ok.

    Records without a ``crc`` field (written before checksums existed)
    always verify.
    """
    stored = record.get("crc")
    if stored is None:
        return None
    if stored == _record_crc(_record_payload(record)):
        return None
    return stored


def _decode_record_payload(record: dict):
    """Decode a record's payload: ``List[Action]`` or :class:`ResolvedSlide`.

    Raises:
        ValueError: on a malformed payload or an unsupported routed-slide
            wire version (the latter must NOT be swallowed as a torn tail
            — see :meth:`ActionWAL.replay`).
    """
    if "actions" in record:
        return [decode_action(f) for f in record["actions"]]
    return ResolvedSlide.from_wire(record["slide"])


class ActionWAL:
    """Segmented append-only log of window slides."""

    _PREFIX = "wal-"
    _SUFFIX = ".jsonl"

    def __init__(
        self,
        directory,
        segment_records: int = 256,
        fsync: bool = True,
    ):
        """
        Args:
            directory: Segment directory (created if missing).
            segment_records: Records per segment before rotation (>= 1).
            fsync: Force every append to stable storage before returning.
        """
        if segment_records < 1:
            raise ValueError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self._dir = pathlib.Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_records = segment_records
        self._fsync = fsync
        self._handle = None
        self._active_path: pathlib.Path = None
        self._active_records = 0
        self._last_seq = 0
        self._recover_append_position()

    # -- introspection -----------------------------------------------------

    def segments(self) -> List[pathlib.Path]:
        """Segment files, oldest first."""
        return sorted(self._dir.glob(f"{self._PREFIX}*{self._SUFFIX}"))

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    # -- writing -----------------------------------------------------------

    def append(self, seq: int, actions: Sequence[Action]) -> None:
        """Durably log one slide; returns only after it is on disk.

        ``seq`` must continue the log (``last_seq + 1``); an empty log
        accepts any positive start (the tail below a snapshot may have
        been pruned).
        """
        encoded = [encode_action(a) for a in actions]
        self._append_record(seq, {"seq": seq, "actions": encoded})

    def append_resolved(self, seq: int, slide: ResolvedSlide) -> None:
        """Durably log one routed (pre-resolved) slide.

        The routed-shard counterpart of :meth:`append`: the record carries
        the slide's format-versioned wire document instead of raw actions.
        Same sequencing contract as :meth:`append`; both record kinds may
        interleave in one log (broadcast-era prefix, routed suffix).
        """
        self._append_record(seq, {"seq": seq, "slide": slide.to_wire()})

    def _append_record(self, seq: int, payload: dict) -> None:
        """Sequence-check, checksum, write and fsync one record."""
        if seq <= 0:
            raise PersistenceError(f"slide seq must be positive, got {seq}")
        if self._last_seq and seq != self._last_seq + 1:
            raise PersistenceError(
                f"WAL append out of order: got seq {seq} after {self._last_seq}"
            )
        if self._handle is None or self._active_records >= self._segment_records:
            self._open_segment(seq)
        record = dict(payload)
        record["crc"] = _record_crc(payload)
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._active_records += 1
        self._last_seq = seq

    def close(self) -> None:
        """Release the active segment's file handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -----------------------------------------------------------

    def replay(self, after: int = 0) -> Iterator[Tuple[int, object]]:
        """Yield ``(seq, payload)`` for every record with ``seq > after``.

        The payload is a ``List[Action]`` for action records and a
        :class:`~repro.core.resolve.ResolvedSlide` for routed-slide
        records; consumers dispatch on type.  Verifies record contiguity
        across segment boundaries.  A torn final line (crash mid-append)
        ends the replay cleanly; corruption anywhere else — including a
        checksum-valid routed record whose wire version this build does
        not read — raises
        :class:`~repro.persistence.serialize.PersistenceError`.
        """
        segments = self.segments()
        expected = None
        for index, path in enumerate(segments):
            is_tail_segment = index == len(segments) - 1
            lines = path.read_bytes().split(b"\n")
            for line_number, raw in enumerate(lines, start=1):
                if not raw.strip():
                    continue
                torn_ok = is_tail_segment and line_number == len(lines)
                try:
                    record = json.loads(raw.decode("utf-8"))
                    seq = record["seq"]
                    bad_crc = _crc_mismatch(record)
                except (ValueError, KeyError, TypeError) as exc:
                    if torn_ok:
                        return
                    raise PersistenceError(
                        f"corrupt WAL record {path.name}:{line_number} ({exc})"
                    ) from exc
                if bad_crc is not None:
                    if torn_ok:
                        return
                    raise PersistenceError(
                        f"WAL checksum mismatch in segment {path.name} at "
                        f"record seq {seq} (line {line_number}): stored crc "
                        f"{bad_crc} does not match the record payload"
                    )
                try:
                    payload = _decode_record_payload(record)
                except (ValueError, KeyError, TypeError) as exc:
                    # A checksum-verified record decoded its exact written
                    # bytes, so a decode failure there is a format problem
                    # (e.g. a newer routed wire version), never a torn
                    # append; only unchecksummed legacy tails stay torn-ok.
                    if torn_ok and record.get("crc") is None:
                        return
                    raise PersistenceError(
                        f"unreadable WAL record {path.name}:{line_number} "
                        f"at seq {seq} ({exc})"
                    ) from exc
                if expected is not None and seq != expected:
                    raise PersistenceError(
                        f"WAL gap at {path.name}:{line_number}: "
                        f"expected seq {expected}, found {seq}"
                    )
                expected = seq + 1
                if seq > after:
                    yield seq, payload

    # -- retention ---------------------------------------------------------

    def prune_through(self, seq: int) -> int:
        """Delete segments fully covered by slide ``seq``; return the count.

        A segment is deletable when every record in it has sequence at
        most ``seq`` — i.e. the *next* segment starts at or below
        ``seq + 1``.  The newest segment is always kept (it is the append
        target).
        """
        segments = self.segments()
        firsts = [self._first_seq_of(path) for path in segments]
        removed = 0
        for i, path in enumerate(segments[:-1]):
            if firsts[i + 1] <= seq + 1:
                path.unlink()
                removed += 1
            else:
                break
        return removed

    # -- internals ---------------------------------------------------------

    def _first_seq_of(self, path: pathlib.Path) -> int:
        """The first record seq a segment holds, from its file name."""
        stem = path.name[len(self._PREFIX) : -len(self._SUFFIX)]
        try:
            return int(stem)
        except ValueError as exc:
            raise PersistenceError(
                f"malformed WAL segment name {path.name!r}"
            ) from exc

    def _open_segment(self, first_seq: int) -> None:
        """Rotate to (or reopen) the segment starting at ``first_seq``."""
        self.close()
        if self._active_path is not None and self._active_records < self._segment_records:
            path = self._active_path
        else:
            path = self._dir / f"{self._PREFIX}{first_seq:010d}{self._SUFFIX}"
            self._active_records = 0
        self._handle = open(path, "a", encoding="utf-8")
        self._active_path = path

    def _recover_append_position(self) -> None:
        """Scan existing segments; truncate a torn tail; set the append seq."""
        segments = self.segments()
        for index, path in enumerate(segments):
            is_tail_segment = index == len(segments) - 1
            size = path.stat().st_size
            good_bytes = 0
            records = 0
            torn = False
            with open(path, "rb") as handle:
                for raw in handle:
                    complete = raw.endswith(b"\n")
                    # Only the *final* line of the *final* segment may be
                    # torn; a bad record anywhere else is corruption and
                    # must raise, not silently truncate durable records
                    # behind it.
                    torn_ok = (
                        is_tail_segment and good_bytes + len(raw) >= size
                    )
                    try:
                        record = json.loads(raw.decode("utf-8"))
                        seq = record["seq"]
                        # Either payload kind must be present (KeyError
                        # from _record_payload flags a payload-less line).
                        _record_payload(record)
                        bad_crc = _crc_mismatch(record)
                    except (ValueError, KeyError, TypeError) as exc:
                        if torn_ok:
                            torn = True
                            break
                        raise PersistenceError(
                            f"corrupt WAL record in {path.name} ({exc})"
                        ) from exc
                    if bad_crc is not None:
                        if torn_ok:
                            # A damaged final record is indistinguishable
                            # from a torn append: truncate and heal through
                            # redelivery.
                            torn = True
                            break
                        raise PersistenceError(
                            f"WAL checksum mismatch in segment {path.name} "
                            f"at record seq {seq}: stored crc {bad_crc} "
                            "does not match the record payload"
                        )
                    if not complete:
                        # Parsed but unterminated: treat as torn — a
                        # completed append always ends with a newline.
                        if torn_ok:
                            torn = True
                            break
                        raise PersistenceError(
                            f"unterminated WAL record in non-tail "
                            f"segment {path.name}"
                        )
                    records += 1
                    good_bytes += len(raw)
                    self._last_seq = seq
            if is_tail_segment:
                if torn or good_bytes < size:
                    with open(path, "rb+") as handle:
                        handle.truncate(good_bytes)
                self._active_path = path
                self._active_records = records
