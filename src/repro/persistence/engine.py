"""Crash-recoverable streaming: StateStore layout + RecoverableEngine.

``RecoverableEngine`` wraps any serializable SIM framework (IC, SIC,
``WindowedGreedy``) with the classic snapshot + write-ahead-log recipe:

1. every arriving slide is appended to the action WAL *before* it is
   processed (write-ahead: a slide the engine acknowledged is on disk);
2. every ``snapshot_every`` slides the full framework state — explicit
   ``to_state()`` schemas, no pickle — is written atomically to the
   snapshot store, and WAL segments older than the oldest retained
   snapshot are pruned;
3. :meth:`RecoverableEngine.open` restores the newest valid snapshot and
   replays only the WAL records behind it, so a warm restart costs
   O(tail) work instead of re-streaming from t = 0 — with answers
   *identical* to an uninterrupted run (the restore-equivalence property
   tests pin this per oracle and framework).

The state directory layout is owned by :class:`StateStore`::

    <state_dir>/
      snapshots/snapshot-<slideseq>.json   atomic write-rename, last M kept
      wal/wal-<firstseq>.jsonl             fsync-on-slide, segment rotation

A *sharded* engine (:mod:`repro.sharding`) nests one full ``StateStore``
per shard under the same root — ``shard-0/``, ``shard-1/``, ... — plus a
``sharding.json`` manifest; :func:`shard_state_dir` and
:func:`list_shard_state_dirs` own that naming so the CLI, the sharded
facade and the tests agree on it.

Passing ``state_dir=None`` (or constructing with ``store=None``) makes the
engine a zero-overhead passthrough — the hot path is untouched when
persistence is off.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Optional

from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.resolve import ResolvedSlide
from repro.persistence.serialize import (
    SNAPSHOT_FORMAT_VERSION,
    PersistenceError,
    algorithm_from_state,
    algorithm_to_state,
)
from repro.persistence.snapshots import SnapshotStore
from repro.persistence.wal import ActionWAL
from repro.telemetry.metrics import Histogram
from repro.telemetry.trace import record_stage

__all__ = [
    "StateStore",
    "RecoverableEngine",
    "shard_state_dir",
    "list_shard_state_dirs",
]

#: Name template of one shard's state directory under a sharded root.
_SHARD_DIR_FORMAT = "shard-{shard}"


def shard_state_dir(root, shard: int) -> pathlib.Path:
    """The state directory of shard ``shard`` under a sharded root."""
    if shard < 0:
        raise ValueError(f"shard must be >= 0, got {shard}")
    return pathlib.Path(root) / _SHARD_DIR_FORMAT.format(shard=shard)


def list_shard_state_dirs(root) -> list:
    """Existing ``shard-<i>/`` directories under ``root``, ordered by shard.

    Returns an empty list for unsharded (or nonexistent) state dirs, which
    is how callers distinguish the two layouts.
    """
    root = pathlib.Path(root)
    found = []
    for path in root.glob("shard-*"):
        if not path.is_dir():
            continue
        suffix = path.name.split("-", 1)[1]
        if suffix.isdigit():
            found.append((int(suffix), path))
    return [path for _shard, path in sorted(found)]


class StateStore:
    """One durable state directory: snapshots plus the action WAL."""

    def __init__(
        self,
        root,
        keep_snapshots: int = 3,
        segment_records: int = 256,
        fsync: bool = True,
    ):
        """
        Args:
            root: State directory (created if missing).
            keep_snapshots: Snapshot retention (>= 1).
            segment_records: WAL records per segment before rotation.
            fsync: Force WAL appends and snapshots to stable storage.
        """
        self.root = pathlib.Path(root)
        self.snapshots = SnapshotStore(
            self.root / "snapshots", keep=keep_snapshots
        )
        self.wal = ActionWAL(
            self.root / "wal", segment_records=segment_records, fsync=fsync
        )

    def close(self) -> None:
        """Release file handles (the WAL's active segment)."""
        self.wal.close()


class RecoverableEngine:
    """Snapshot + WAL wrapper making a SIM framework crash-recoverable."""

    def __init__(
        self,
        algorithm: SIMAlgorithm,
        store: Optional[StateStore] = None,
        snapshot_every: int = 16,
        _slide_seq: int = 0,
        _replayed: int = 0,
    ):
        """Wrap ``algorithm``; prefer :meth:`open` for directory handling.

        Args:
            algorithm: The framework to drive (fresh or restored).
            store: The durable state plane, or ``None`` for a passthrough
                engine with zero persistence overhead.
            snapshot_every: Auto-snapshot cadence in slides; ``0`` disables
                automatic snapshots (manual :meth:`snapshot` / final
                :meth:`close` snapshot only).
        """
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self._algorithm = algorithm
        self._store = store
        self._snapshot_every = snapshot_every
        self._slide_seq = _slide_seq
        self._replayed = _replayed
        self._snapshots_written = 0
        self._last_snapshot_seq = _slide_seq if _replayed == 0 else None
        # Durability latency distributions (observed once per slide /
        # snapshot — negligible cost; scraped by the telemetry plane).
        self.fsync_hist = Histogram()
        self.snapshot_hist = Histogram()

    @classmethod
    def open(
        cls,
        state_dir,
        factory: Optional[Callable[[], SIMAlgorithm]] = None,
        snapshot_every: int = 16,
        keep_snapshots: int = 3,
        segment_records: int = 256,
        fsync: bool = True,
    ) -> "RecoverableEngine":
        """Open a state directory: restore + replay, or start fresh.

        When the directory holds a snapshot, the newest valid one is
        restored and the WAL records behind it are replayed
        (:attr:`replayed_slides` counts them — the O(tail) recovery
        witness).  Otherwise ``factory()`` builds a fresh framework.

        Args:
            state_dir: Durable state directory, or ``None`` for a
                passthrough engine (requires ``factory``).
            factory: Zero-argument framework constructor for the fresh
                start; optional when resuming existing state.
            snapshot_every: Auto-snapshot cadence in slides (0 disables).
            keep_snapshots: Snapshot retention (>= 1).
            segment_records: WAL records per segment before rotation.
            fsync: Force WAL appends and snapshots to stable storage.

        Raises:
            PersistenceError: when there is no usable state and no
                ``factory``, or the stored state is corrupt/gapped.
        """
        if state_dir is None:
            if factory is None:
                raise PersistenceError(
                    "state_dir is None and no factory was provided"
                )
            return cls(factory(), None, snapshot_every)
        store = StateStore(
            state_dir,
            keep_snapshots=keep_snapshots,
            segment_records=segment_records,
            fsync=fsync,
        )
        latest = store.snapshots.load_latest()
        if latest is not None:
            seq, document = latest
            algorithm = algorithm_from_state(document["algorithm"])
        else:
            seq = 0
            algorithm = None
        replayed = 0
        for wal_seq, payload in store.wal.replay(after=seq):
            if algorithm is None:
                # No snapshot: the WAL must cover the stream from slide 1.
                if wal_seq != 1 and replayed == 0:
                    raise PersistenceError(
                        f"no snapshot and WAL starts at slide {wal_seq}; "
                        "cannot recover the stream prefix"
                    )
                if factory is None:
                    raise PersistenceError(
                        f"no snapshot in {store.root} and no factory "
                        "was provided"
                    )
                algorithm = factory()
            elif wal_seq != seq + 1:
                raise PersistenceError(
                    f"WAL gap after snapshot: expected slide {seq + 1}, "
                    f"found {wal_seq}"
                )
            # Dispatch on record kind: raw action batches replay through
            # process(), routed-slide records through apply_resolved() —
            # a shard log migrated from broadcast to routed ingest holds
            # both, in sequence order.
            if isinstance(payload, ResolvedSlide):
                algorithm.apply_resolved(payload)
            else:
                algorithm.process(payload)
            replayed += 1
            seq = wal_seq
        if algorithm is None:
            if factory is None:
                raise PersistenceError(
                    f"no recoverable state in {store.root} and no factory "
                    "was provided"
                )
            algorithm = factory()
        return cls(
            algorithm,
            store,
            snapshot_every,
            _slide_seq=seq,
            _replayed=replayed,
        )

    # -- streaming ---------------------------------------------------------

    def process(self, batch) -> None:
        """Log one slide ahead, then process it (write-ahead ordering).

        The slide is validated against the stream contract *before* it is
        logged, so a rejected batch never reaches the WAL and recovery
        never replays a poisoned record.
        """
        batch = list(batch)
        if not batch:
            return
        last = self._algorithm.now
        for action in batch:
            if action.time <= last:
                raise ValueError(
                    f"engine received out-of-order action {action.time} "
                    f"after {last}"
                )
            last = action.time
        seq = self._slide_seq + 1
        if self._store is not None:
            wal_started = time.perf_counter()
            self._store.wal.append(seq, batch)
            wal_elapsed = time.perf_counter() - wal_started
            self.fsync_hist.observe(wal_elapsed)
            record_stage("wal_fsync", wal_elapsed, len(batch))
        self._algorithm.process(batch)
        self._slide_seq = seq
        if (
            self._store is not None
            and self._snapshot_every
            and seq % self._snapshot_every == 0
        ):
            self.snapshot()

    def apply_resolved(self, resolved: ResolvedSlide) -> None:
        """Log one routed slide ahead, then apply it (write-ahead ordering).

        The routed-shard counterpart of :meth:`process`: the facade
        resolved the slide once and routed this shard its influence
        records; the WAL record carries the routed tuples, not raw
        actions, so recovery replays exactly what this shard consumed.
        Same validate-before-log contract as :meth:`process`.
        """
        if resolved.count == 0:
            return
        now = self._algorithm.now
        if resolved.start <= now:
            raise ValueError(
                f"engine received out-of-order slide starting "
                f"{resolved.start} at clock {now}"
            )
        seq = self._slide_seq + 1
        if self._store is not None:
            wal_started = time.perf_counter()
            self._store.wal.append_resolved(seq, resolved)
            wal_elapsed = time.perf_counter() - wal_started
            self.fsync_hist.observe(wal_elapsed)
            record_stage("wal_fsync", wal_elapsed, len(resolved.records))
        self._algorithm.apply_resolved(resolved)
        self._slide_seq = seq
        if (
            self._store is not None
            and self._snapshot_every
            and seq % self._snapshot_every == 0
        ):
            self.snapshot()

    def query(self) -> SIMResult:
        """Answer the SIM query for the current window."""
        return self._algorithm.query()

    # -- durability --------------------------------------------------------

    def snapshot(self) -> None:
        """Write a full-state snapshot now and prune the covered WAL tail."""
        if self._store is None:
            raise PersistenceError("engine has no state store to snapshot to")
        snapshot_started = time.perf_counter()
        document = {
            "format": SNAPSHOT_FORMAT_VERSION,
            "slide_seq": self._slide_seq,
            "algorithm": algorithm_to_state(self._algorithm),
        }
        self._store.snapshots.save(self._slide_seq, document)
        self._snapshots_written += 1
        self._last_snapshot_seq = self._slide_seq
        retained = self._store.snapshots.sequences()
        if retained:
            self._store.wal.prune_through(min(retained))
        snapshot_elapsed = time.perf_counter() - snapshot_started
        self.snapshot_hist.observe(snapshot_elapsed)
        record_stage("snapshot", snapshot_elapsed, 1)

    def close(self, snapshot: bool = True) -> None:
        """Release the store; by default seal state with a final snapshot.

        A clean shutdown snapshot makes the next :meth:`open` replay zero
        slides.  Pass ``snapshot=False`` when the in-memory state must
        not be trusted (e.g. closing after an exception) — recovery then
        falls back to the last good snapshot plus the WAL tail.
        """
        if self._store is not None:
            if snapshot and self._slide_seq != self._last_snapshot_seq:
                self.snapshot()
            self._store.close()

    def __enter__(self) -> "RecoverableEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close on exit; skip the final snapshot after an exception."""
        self.close(snapshot=exc_type is None)

    # -- introspection -----------------------------------------------------

    @property
    def algorithm(self) -> SIMAlgorithm:
        """The wrapped framework."""
        return self._algorithm

    @property
    def now(self) -> int:
        """Stream clock of the wrapped framework (0 before any action).

        The serving plane's ingest loop uses this to drop already-covered
        actions on at-least-once redelivery (a client replaying its stream
        after a crash) instead of rejecting the whole connection.
        """
        return self._algorithm.now

    @property
    def store(self) -> Optional[StateStore]:
        """The durable state plane (``None`` for passthrough engines)."""
        return self._store

    @property
    def slides_processed(self) -> int:
        """Total slides in the engine's lifetime, including pre-crash ones."""
        return self._slide_seq

    @property
    def replayed_slides(self) -> int:
        """WAL-tail slides re-processed by :meth:`open` — the O(tail) witness."""
        return self._replayed

    @property
    def snapshots_written(self) -> int:
        """Snapshots written by this engine instance."""
        return self._snapshots_written
