"""Explicit-schema codecs shared by the persistence plane.

Everything the state store writes — snapshots and WAL records — is plain
JSON built from the ``to_state()`` documents the core classes expose.  No
live object is ever pickled: each schema is explicit, carries a format
version, and is rebuilt through ``from_state()`` constructors, so stored
state survives process restarts, interpreter upgrades, and code review.

This module holds the small shared pieces:

* :class:`PersistenceError` — the error type for corrupt/incompatible
  stored state (a :class:`ValueError`, so existing CLI error handling
  reports it cleanly);
* :func:`encode_action` / :func:`decode_action` — the ``[time, user,
  parent]`` triple used by WAL records and window snapshots;
* :func:`algorithm_to_state` / :func:`algorithm_from_state` — dispatch
  between a framework instance and its serialized document, keyed by the
  document's ``"algorithm"`` tag (``ic``, ``sic``, ``greedy``, ``multi``).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm
from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "PersistenceError",
    "encode_action",
    "decode_action",
    "algorithm_to_state",
    "algorithm_from_state",
    "ensure_same_engine_config",
]

#: Version tag of the snapshot *document* (the envelope around an
#: algorithm state).  Independent of the per-algorithm state version so
#: the envelope and the payload can evolve separately.
SNAPSHOT_FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Stored state is corrupt, incomplete, or from an incompatible format."""


def encode_action(action: Action) -> list:
    """``[time, user, parent]`` with the ``ROOT`` sentinel kept verbatim."""
    return [action.time, action.user, action.parent]


def decode_action(fields: Sequence[int]) -> Action:
    """Rebuild an :class:`~repro.core.actions.Action` from its triple."""
    time, user, parent = fields
    return Action(time=time, user=user, parent=parent)


def _multi_from_state(state: dict) -> MultiQueryEngine:
    """Rebuild a query board, resolving members through this dispatch."""
    return MultiQueryEngine.from_state(state, loader=algorithm_from_state)


#: ``"algorithm"`` tag -> ``from_state`` constructor.
_ALGORITHM_LOADERS: Dict[str, Callable[[dict], SIMAlgorithm]] = {
    "ic": InfluentialCheckpoints.from_state,
    "sic": SparseInfluentialCheckpoints.from_state,
    "greedy": WindowedGreedy.from_state,
    "multi": _multi_from_state,
}


def algorithm_to_state(algorithm: SIMAlgorithm) -> dict:
    """Serialize a framework via its ``to_state`` hook.

    Raises:
        PersistenceError: when the algorithm does not implement
            ``to_state`` (e.g. the graph baselines, which recompute from
            scratch and have nothing durable to save).
    """
    to_state = getattr(algorithm, "to_state", None)
    if to_state is None:
        raise PersistenceError(
            f"{type(algorithm).__name__} does not support state "
            "serialization (no to_state hook)"
        )
    return to_state()


def algorithm_from_state(state: dict) -> SIMAlgorithm:
    """Rebuild a framework from a ``to_state`` document.

    Dispatches on the document's ``"algorithm"`` tag; the per-algorithm
    ``from_state`` validates the state format version.

    Raises:
        PersistenceError: when the tag is missing or unknown.
    """
    kind = state.get("algorithm")
    loader = _ALGORITHM_LOADERS.get(kind)
    if loader is None:
        raise PersistenceError(
            f"unknown algorithm kind {kind!r} in state document; "
            f"known: {sorted(_ALGORITHM_LOADERS)}"
        )
    return loader(state)


def ensure_same_engine_config(stored, requested, where: str = "state dir") -> None:
    """Reject a resume whose requested engine disagrees with the stored one.

    A restored engine keeps the configuration it was created with; letting
    different ``k``/``window``/``oracle``/shard settings pass silently
    would emit answers for settings the caller did not ask for.  Both the
    CLI resume path and each shard worker of the sharded plane route
    through this single definition of "same config".

    Args:
        stored: The live algorithm recovered from durable state.
        requested: A freshly built algorithm from the caller's settings.
        where: What to name in the error (e.g. ``"shard 2"``).

    Raises:
        PersistenceError: when algorithm kind or config differ.
    """
    stored_state = algorithm_to_state(stored)
    requested_state = algorithm_to_state(requested)
    stored_key = (stored_state["algorithm"], stored_state["config"])
    requested_key = (requested_state["algorithm"], requested_state["config"])
    if stored_key != requested_key:
        raise PersistenceError(
            f"{where} was created with different engine settings "
            f"(stored {stored_key[0]} {stored_key[1]}, requested "
            f"{requested_key[0]} {requested_key[1]}); rerun with matching "
            "settings or a fresh state dir"
        )
