"""Embed a ReproService in a background thread (tests, benchmarks, tools).

The service is an asyncio application; production runs it via
``repro-stream serve`` on the main thread.  Tooling that needs a live
server *and* a synchronous driver in the same process — the test suite,
``scripts/bench_smoke.py`` — uses :class:`ServiceRunner`: a daemon thread
hosting the event loop, with thread-safe start/stop and the bound port
exposed once the socket is up.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.persistence.engine import RecoverableEngine
from repro.service.config import ServiceConfig
from repro.service.server import ReproService

__all__ = ["ServiceRunner"]


class ServiceRunner:
    """Run one :class:`~repro.service.server.ReproService` in a thread."""

    def __init__(self, engine: RecoverableEngine, config: ServiceConfig):
        """
        Args:
            engine: The engine to serve (the runner's thread becomes its
                single writer).
            config: Serving-plane knobs; ``port=0`` is the normal choice
                so parallel runners never collide.
        """
        self.service = ReproService(engine, config)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port (available after :meth:`start` returns)."""
        return self.service.port

    @property
    def host(self) -> str:
        """The listen address."""
        return self.service.host

    @property
    def degraded(self) -> bool:
        """Whether the served engine is running degraded (shard down)."""
        return bool(getattr(self.service.engine, "degraded", False))

    def start(self, timeout: float = 10.0) -> "ServiceRunner":
        """Start the server thread; returns once the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("runner already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service did not start within timeout")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful shutdown and join the server thread."""
        if self._thread is None:
            return
        self.service.request_shutdown_threadsafe()
        self._thread.join(timeout)
        alive = self._thread.is_alive()
        self._thread = None
        if alive:
            raise RuntimeError("service did not stop within timeout")
        if self._error is not None:
            raise RuntimeError("service failed") from self._error

    def __enter__(self) -> "ServiceRunner":
        """Context-manager entry: start the server."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stop the server."""
        self.stop()

    def _main(self) -> None:
        try:
            asyncio.run(
                self.service.run(
                    install_signal_handlers=False,
                    on_ready=lambda _service: self._ready.set(),
                )
            )
        except BaseException as error:  # surfaced on start()/stop()
            self._error = error
        finally:
            self._ready.set()
