"""Serving-plane configuration: one validated, immutable knob set."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceConfig"]


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Knobs of one :class:`~repro.service.server.ReproService`.

    Attributes:
        host: Listen address.
        port: Listen port; ``0`` lets the OS pick (the bound port is then
            available as ``ReproService.port`` after start).
        slide: Maximum actions coalesced into one slide — the serving
            plane's ``L``.  A full pending slide is flushed to the engine
            immediately.
        flush_interval: Seconds a *partial* slide may sit pending before a
            time-based flush, so answers stay fresh on a trickling stream.
        queue_capacity: Bound of the ingest queue.  When full, connection
            readers block on ``put`` and TCP backpressure propagates to
            clients — the server never buffers unboundedly.
        ack_every: Ingest connections receive one batched ack line per
            this many received lines (plus an exact one per ``sync``).
        history: Published answer boards retained for historical
            ``/queries/<name>/history`` reads.
    """

    host: str = "127.0.0.1"
    port: int = 7077
    slide: int = 32
    flush_interval: float = 0.5
    queue_capacity: int = 4096
    ack_every: int = 1000
    history: int = 128

    def __post_init__(self) -> None:
        if self.slide < 1:
            raise ValueError(f"slide must be >= 1, got {self.slide}")
        if self.flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be positive, got {self.flush_interval}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {self.ack_every}")
        if self.history < 1:
            raise ValueError(f"history must be >= 1, got {self.history}")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
