"""Serving-plane configuration: one validated, immutable knob set."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ServiceConfig"]


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Knobs of one :class:`~repro.service.server.ReproService`.

    Attributes:
        host: Listen address.
        port: Listen port; ``0`` lets the OS pick (the bound port is then
            available as ``ReproService.port`` after start).
        slide: Maximum actions coalesced into one slide — the serving
            plane's ``L``.  A full pending slide is flushed to the engine
            immediately.
        flush_interval: Seconds a *partial* slide may sit pending before a
            time-based flush, so answers stay fresh on a trickling stream.
        queue_capacity: Bound of the ingest queue.  When full, connection
            readers block on ``put`` and TCP backpressure propagates to
            clients — the server never buffers unboundedly.
        ack_every: Ingest connections receive one batched ack line per
            this many received lines (plus an exact one per ``sync``).
        history: Published answer boards retained for historical
            ``/queries/<name>/history`` reads.
        shards: Shard engines behind the ingest loop (the sharded
            multi-core write plane, :mod:`repro.sharding`).  ``1`` serves
            one engine exactly as before.  The server validates this
            against the engine it is given (a mismatch raises), so a
            config cannot silently claim a sharding level the engine
            does not have.
        shard_backend: Worker backend for ``shards > 1``: ``"thread"``
            (default), ``"process"`` (one forked worker per shard — real
            multi-core), or ``"serial"`` (debugging).  Validated against
            the served engine like ``shards``.
        writer_retries: Extra attempts the ingest writer makes when a
            slide raises :class:`~repro.sharding.ShardingError` before it
            gives up and dies.  A sharded engine only escalates after its
            own supervision budget is exhausted, so this is the second
            line of defence; retrying the same slide is safe because the
            engine's per-shard catch-up filter makes redelivery
            idempotent.  ``0`` disables the retry.
        trace_log: Path of the slow-slide JSONL trace log (``None``
            disables emission; the in-memory trace ring still runs).
        slow_slide_ms: Slides whose end-to-end dispatch takes at least
            this many milliseconds are emitted to ``trace_log``.  ``0``
            emits *every* slide (the triage/test hook); ``None`` keeps
            emission off.
        trace_ring: Most-recent slide traces retained in memory for
            ``/metrics`` and triage.
        flight_recorder: Run the metrics flight recorder — the retained
            time-series sampler behind ``GET /metrics/history`` and the
            SLO monitor.  Fixed memory (see DESIGN.md); on by default.
        sample_interval: Seconds between flight-recorder samples (the
            base ring resolution).
        alert_log: Path of the SLO alert JSONL log (``None`` keeps alert
            state in-memory/exported only).
        slo_defaults: Evaluate the stock serving-plane objectives
            (:func:`repro.telemetry.slo.default_slos`).
        slo_specs: Extra objectives as ``--slo`` spec strings
            (``NAME=SERIES,threshold=...``), parsed by
            :func:`repro.telemetry.slo.parse_slo_spec`; validated here so
            a typo fails at config time, not mid-flight.
        profile: Start the continuous sampling profiler at boot.  Off by
            default; ``GET /debug/profile?seconds=N`` still works when
            off (it samples just for the request window).
        profile_hz: Sampling rate of the wall-clock profiler.
    """

    host: str = "127.0.0.1"
    port: int = 7077
    slide: int = 32
    flush_interval: float = 0.5
    queue_capacity: int = 4096
    ack_every: int = 1000
    history: int = 128
    shards: int = 1
    shard_backend: str = "thread"
    writer_retries: int = 2
    trace_log: Optional[str] = None
    slow_slide_ms: Optional[float] = None
    trace_ring: int = 64
    flight_recorder: bool = True
    sample_interval: float = 1.0
    alert_log: Optional[str] = None
    slo_defaults: bool = True
    slo_specs: Tuple[str, ...] = ()
    profile: bool = False
    profile_hz: float = 100.0

    def __post_init__(self) -> None:
        if self.slide < 1:
            raise ValueError(f"slide must be >= 1, got {self.slide}")
        if self.flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be positive, got {self.flush_interval}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {self.ack_every}")
        if self.history < 1:
            raise ValueError(f"history must be >= 1, got {self.history}")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_backend not in ("serial", "thread", "process"):
            raise ValueError(
                f"shard_backend must be serial, thread or process, "
                f"got {self.shard_backend!r}"
            )
        if self.writer_retries < 0:
            raise ValueError(
                f"writer_retries must be >= 0, got {self.writer_retries}"
            )
        if self.slow_slide_ms is not None and self.slow_slide_ms < 0:
            raise ValueError(
                f"slow_slide_ms must be >= 0, got {self.slow_slide_ms}"
            )
        if self.trace_ring < 1:
            raise ValueError(
                f"trace_ring must be >= 1, got {self.trace_ring}"
            )
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {self.sample_interval}"
            )
        if self.profile_hz <= 0:
            raise ValueError(
                f"profile_hz must be positive, got {self.profile_hz}"
            )
        if not isinstance(self.slo_specs, tuple):
            # Accept any iterable of specs but store a hashable tuple
            # (the dataclass is frozen; bypass the freeze for coercion).
            object.__setattr__(self, "slo_specs", tuple(self.slo_specs))
        from repro.telemetry.slo import parse_slo_spec

        for spec in self.slo_specs:
            parse_slo_spec(spec)  # raises ValueError on a bad spec
