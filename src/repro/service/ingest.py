"""The single-writer ingest loop: coalesce actions into slides, feed the engine.

Exactly one asyncio task (the *writer*) consumes the bounded ingest queue
and is the only code that ever calls ``engine.process``.  Connection
handlers just ``await queue.put(...)`` — when the queue is full they block,
stop reading their sockets, and TCP backpressure reaches the client; the
server never buffers unboundedly and never drops an accepted action.

Arriving actions are coalesced into slides of at most ``slide`` actions
(the serving plane's ``L``).  A full slide flushes immediately; a partial
slide flushes after ``flush_interval`` seconds so answers stay fresh on a
trickling stream.  Each flush is one engine slide: WAL-logged ahead by the
:class:`~repro.persistence.engine.RecoverableEngine`, processed, and
published to the immutable :class:`~repro.service.cache.AnswerCache` at the
slide boundary (via the :class:`~repro.core.multi.MultiQueryEngine` publish
hook when a board is being served).  The CPU-heavy ``process`` call runs in
a worker thread so the event loop keeps answering reads mid-slide.

Actions whose time is at or below the engine's stream clock are dropped
(and counted) instead of rejected: at-least-once redelivery — a client
replaying its stream after a server crash — is thereby idempotent, which
is what makes ``kill -9`` + restart + replay converge to the uninterrupted
answers.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.actions import Action
from repro.core.base import SIMResult
from repro.core.multi import MultiQueryEngine
from repro.experiments.metrics import RateEstimator
from repro.persistence.engine import RecoverableEngine
from repro.service.cache import AnswerBoard, AnswerCache
from repro.sharding.supervisor import ShardingError
from repro.telemetry import MetricsRegistry, TraceRecorder
from repro.telemetry.trace import record_stage

__all__ = ["IngestStats", "IngestLoop", "as_board"]


def as_board(algorithm):
    """The multi-query board face of an engine's algorithm, or ``None``.

    Both :class:`~repro.core.multi.MultiQueryEngine` and the sharded
    plane's :class:`~repro.sharding.engine.ShardedBoard` satisfy the board
    protocol (``names``/``query``/``query_all``/``query_stats``/
    ``add_publish_hook``); plain single-query algorithms do not and are
    served under the implicit name ``"main"``.
    """
    if isinstance(algorithm, MultiQueryEngine):
        return algorithm
    if all(
        hasattr(algorithm, attr)
        for attr in ("names", "query_all", "query_stats", "add_publish_hook")
    ):
        return algorithm
    return None


class IngestStats:
    """Mutable counters owned by the writer; metrics snapshots read them."""

    def __init__(self) -> None:
        self.accepted = 0  # actions admitted into a slide
        self.dropped_stale = 0  # actions at/below the stream clock
        self.rejected_lines = 0  # unparseable ingest lines (server-side)
        self.slides = 0  # flushes that reached the engine
        self.count_flushes = 0  # flushes triggered by a full slide
        self.interval_flushes = 0  # flushes triggered by the timer
        self.forced_flushes = 0  # flushes triggered by sync/stop
        self.writer_retries = 0  # slides re-dispatched after ShardingError
        self.last_slide_seconds = 0.0
        self.engine_seconds = 0.0
        self.started_at = time.time()  # wall clock, display only
        self.started_monotonic = time.monotonic()  # all arithmetic
        # One estimator backs both reported rates: decayed (EWMA) for
        # "how fast right now", lifetime for "how fast overall".
        self.rate = RateEstimator(halflife=10.0)

    def snapshot(self) -> dict:
        """JSON-safe counter snapshot for ``/metrics``."""
        slides = self.slides
        return {
            "accepted": self.accepted,
            "dropped_stale": self.dropped_stale,
            "rejected_lines": self.rejected_lines,
            "slides": slides,
            "count_flushes": self.count_flushes,
            "interval_flushes": self.interval_flushes,
            "forced_flushes": self.forced_flushes,
            "writer_retries": self.writer_retries,
            "last_slide_seconds": round(self.last_slide_seconds, 6),
            "mean_slide_seconds": round(
                self.engine_seconds / slides if slides else 0.0, 6
            ),
            "ingest_rate_actions_per_sec": round(self.rate.rate, 1),
            "lifetime_rate_actions_per_sec": round(self.rate.lifetime_rate, 1),
        }


class _Sync:
    """Queue sentinel: flush pending work, then set the event (barrier)."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = asyncio.Event()


class _Flush:
    """Queue sentinel: flush pending work, no barrier."""

    __slots__ = ()


_STOP = object()


class IngestLoop:
    """Bounded-queue, slide-coalescing, single-writer engine feeder."""

    def __init__(
        self,
        engine: RecoverableEngine,
        cache: AnswerCache,
        *,
        slide: int = 32,
        flush_interval: float = 0.5,
        queue_capacity: int = 4096,
        writer_retries: int = 2,
        recorder: Optional[TraceRecorder] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        """
        Args:
            engine: The (possibly durable) engine; this loop becomes its
                only writer.
            cache: Answer cache to publish each slide boundary into.
            slide: Maximum actions per coalesced slide (>= 1).
            flush_interval: Seconds before a partial slide is flushed.
            queue_capacity: Ingest queue bound (backpressure threshold).
            writer_retries: Extra ``engine.process`` attempts after a
                :class:`~repro.sharding.ShardingError` before the writer
                dies (safe: the sharded engine's per-shard catch-up
                filter makes redelivering the same slide idempotent).
            recorder: Per-slide stage-trace recorder (``None`` disables
                tracing entirely; library use pays nothing).
            registry: Metrics registry for the queue-wait histogram.
        """
        if slide < 1:
            raise ValueError(f"slide must be >= 1, got {slide}")
        if flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be positive, got {flush_interval}"
            )
        if writer_retries < 0:
            raise ValueError(
                f"writer_retries must be >= 0, got {writer_retries}"
            )
        self._engine = engine
        self._cache = cache
        self._slide = slide
        self._flush_interval = flush_interval
        self._writer_retries = writer_retries
        self._queue: asyncio.Queue = asyncio.Queue(queue_capacity)
        # Slides run on this dedicated, *named* worker thread (not the
        # loop's anonymous default executor) so the sampling profiler
        # can attribute engine time to the ingest loop by thread name.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest"
        )
        self._pending: List[Action] = []
        self._floor = engine.now
        self._slide_seq = engine.slides_processed
        self._task: Optional[asyncio.Task] = None
        self._error: Optional[BaseException] = None
        self.stats = IngestStats()
        self.recorder = recorder
        self._queue_wait_hist = (
            registry.histogram(
                "repro_ingest_queue_wait_seconds",
                "Per-action wait in the bounded ingest queue",
            )
            if registry is not None
            else None
        )
        # Accumulated queue wait of the actions in the pending slide, and
        # when the pending slide started coalescing (event-loop clock).
        self._pending_wait = 0.0
        self._pending_since = 0.0
        self._multi = as_board(engine.algorithm)
        if self._multi is not None:
            # Publication rides the engine's own slide boundary: the hook
            # fires inside process(), after every query advanced.
            self._multi.add_publish_hook(self._publish)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the writer task on the running event loop."""
        if self._task is not None:
            raise RuntimeError("ingest loop already started")
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Flush pending work and stop the writer task."""
        if self._task is None:
            self._executor.shutdown(wait=False)
            return
        if not self._task.done():
            await self._queue.put(_STOP)
        await self._task
        self._task = None
        self._executor.shutdown(wait=True)

    @property
    def error(self) -> Optional[BaseException]:
        """The writer's fatal error, if it died (``None`` while healthy)."""
        return self._error

    @property
    def queue_depth(self) -> int:
        """Actions (and control items) currently queued."""
        return self._queue.qsize()

    @property
    def queue_capacity(self) -> int:
        """The ingest queue bound."""
        return self._queue.maxsize

    @property
    def slides_processed(self) -> int:
        """Engine slides dispatched by this loop (plus any recovered ones)."""
        return self._slide_seq

    def publish_recovered(self) -> None:
        """Publish the recovered engine's current board (warm-start reads).

        Called once at service start, before any connection is accepted,
        so a restarted server answers top-k from its restored state
        immediately instead of 503-ing until the first new slide arrives.
        """
        if self._engine.slides_processed == 0:
            return
        algorithm = self._engine.algorithm
        if self._multi is not None:
            results = self._multi.query_all()
        else:
            results = {"main": algorithm.query()}
        self._publish(results)

    # -- producer side (connection handlers) -------------------------------

    async def submit(self, action: Action) -> None:
        """Enqueue one action; blocks when the queue is full (backpressure)."""
        if self._error is not None:
            raise RuntimeError(f"ingest loop failed: {self._error}")
        await self._queue.put((asyncio.get_running_loop().time(), action))

    async def sync(self) -> None:
        """Barrier: flush pending actions and wait until they are processed.

        Everything submitted before this call is on disk (when durable) and
        reflected in the published answers when it returns.
        """
        if self._error is not None:
            raise RuntimeError(f"ingest loop failed: {self._error}")
        item = _Sync()
        await self._queue.put(item)
        if self._error is not None:
            # The writer may have died while this put was blocked on a
            # full queue — after its one-shot drain, nobody would ever
            # consume the item, so wake ourselves instead of hanging.
            item.event.set()
        await item.event.wait()
        if self._error is not None:
            raise RuntimeError(f"ingest loop failed: {self._error}")

    async def request_flush(self) -> None:
        """Ask the writer to flush its partial slide (no barrier)."""
        if self._error is not None:
            raise RuntimeError(f"ingest loop failed: {self._error}")
        await self._queue.put(_Flush())

    # -- the writer --------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        deadline: Optional[float] = None
        try:
            while True:
                timeout = None
                if self._pending:
                    timeout = max(deadline - loop.time(), 0.0)
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:  # builtin alias on 3.11+
                    await self._flush("interval")
                    deadline = None
                    continue
                if item is _STOP:
                    await self._flush("forced")
                    return
                if isinstance(item, _Flush):
                    await self._flush("forced")
                    deadline = None
                    continue
                if isinstance(item, _Sync):
                    try:
                        await self._flush("forced")
                    finally:
                        # A failing flush must still wake the barrier (the
                        # error is recorded before the waiter resumes, so
                        # sync() re-raises it instead of hanging).
                        item.event.set()
                    deadline = None
                    continue
                enqueued_at, action = item
                waited = loop.time() - enqueued_at
                if self._queue_wait_hist is not None:
                    self._queue_wait_hist.observe(waited)
                if action.time <= self._floor:
                    self.stats.dropped_stale += 1
                    continue
                self._floor = action.time
                if not self._pending:
                    deadline = loop.time() + self._flush_interval
                    self._pending_since = loop.time()
                self._pending.append(action)
                self._pending_wait += waited
                self.stats.accepted += 1
                if len(self._pending) >= self._slide:
                    await self._flush("count")
                    deadline = None
        except BaseException as error:  # writer death must not hang clients
            # Record and swallow: the failure is surfaced to producers via
            # submit()/sync() and to readers via /healthz, and a swallowed
            # (rather than re-raised) exception keeps the task retrievable
            # so stop() still joins cleanly after a failure.
            self._error = error
            self._release_waiters()

    def _release_waiters(self) -> None:
        """Wake queued sync barriers after a writer failure."""
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if isinstance(item, _Sync):
                item.event.set()

    async def _flush(self, reason: str) -> None:
        """Dispatch the pending slide to the engine (in a worker thread)."""
        if not self._pending:
            return
        loop = asyncio.get_running_loop()
        batch = self._pending
        # Stages observed on the event-loop side, handed to the trace the
        # worker thread opens: per-action queue wait and how long the
        # slide sat coalescing before this dispatch.
        pre_stages: Tuple[Tuple[str, float, int], ...] = (
            ("queue_wait", self._pending_wait, len(batch)),
            ("coalesce", loop.time() - self._pending_since, len(batch)),
        )
        self._pending = []
        self._pending_wait = 0.0
        self._slide_seq += 1
        elapsed = await loop.run_in_executor(
            self._executor, self._run_slide, batch, pre_stages
        )
        self.stats.slides += 1
        setattr(
            self.stats, f"{reason}_flushes",
            getattr(self.stats, f"{reason}_flushes") + 1,
        )
        self.stats.last_slide_seconds = elapsed
        self.stats.engine_seconds += elapsed
        self.stats.rate.record(len(batch))

    def _run_slide(
        self,
        batch: List[Action],
        pre_stages: Tuple[Tuple[str, float, int], ...] = (),
    ) -> float:
        """Worker-thread body: process one slide and publish its answers.

        Opens the slide's :class:`~repro.telemetry.SlideTrace` (ambient,
        per-thread) so every layer underneath — core algorithm, columnar
        kernel, persistence, sharding facade — records its stage into
        this slide's timeline without plumbing.

        A :class:`~repro.sharding.ShardingError` (a sharded engine whose
        supervision budget ran out mid-slide) is retried up to
        ``writer_retries`` times — each retry gives the supervisor a
        fresh budget, and redelivery is idempotent because every shard
        only consumes the suffix beyond its own clock.  Any other
        failure (or exhausting the retries) kills the writer as before.
        """
        recorder = self.recorder
        trace = None
        if recorder is not None:
            trace = recorder.begin(self._slide_seq, len(batch))
            for name, seconds, items in pre_stages:
                trace.add_stage(name, seconds, items)
        started = time.perf_counter()
        try:
            attempts = 0
            while True:
                try:
                    self._engine.process(batch)
                    break
                except ShardingError:
                    if attempts >= self._writer_retries:
                        raise
                    attempts += 1
                    self.stats.writer_retries += 1
            if self._multi is None:
                self._publish({"main": self._engine.query()})
        except BaseException:
            if recorder is not None:
                recorder.abandon(trace)
            raise
        if recorder is not None:
            recorder.finish(trace)
        return time.perf_counter() - started

    def _publish(self, results: Dict[str, SIMResult]) -> None:
        """Freeze and swap the answer board for the slide just processed."""
        publish_started = time.perf_counter()
        self._cache.publish(
            AnswerBoard.from_results(
                results,
                slide=self._slide_seq,
                time=self._engine.now,
                published_at=time.time(),
                published_monotonic=time.monotonic(),
            )
        )
        record_stage(
            "publish", time.perf_counter() - publish_started, len(results)
        )
