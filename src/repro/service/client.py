"""Blocking socket client for the serving plane (tests, load-gen, ops).

Stdlib-only.  :class:`ServiceClient` speaks both of the server's
protocols: :meth:`ServiceClient.http_get` for the read path and
:meth:`ServiceClient.ingest` for the line protocol.  Ingest uses a
background reader thread so server acks can never fill the socket buffer
and deadlock a large one-way send.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.actions import Action
from repro.persistence.serialize import encode_action

__all__ = ["ServiceClient"]


class ServiceClient:
    """Synchronous client for one ReproService endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        """
        Args:
            host: Server address.
            port: Server port.
            timeout: Socket timeout for connects and reads.
        """
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- read path ---------------------------------------------------------

    def http_get(self, path: str) -> Tuple[int, dict]:
        """``GET path`` → ``(status, parsed JSON body)``."""
        status, body, _ = self.http_get_raw(path)
        return status, json.loads(body) if body else {}

    def http_get_raw(self, path: str) -> Tuple[int, str, str]:
        """``GET path`` → ``(status, body text, content type)``.

        The non-JSON read path — prometheus exposition is plain text, so
        scrapers use this and :meth:`http_get` keeps its parsed-dict
        contract.
        """
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            request = (
                f"GET {path} HTTP/1.0\r\n"
                f"Host: {self.host}\r\n"
                "Connection: close\r\n\r\n"
            )
            sock.sendall(request.encode("latin-1"))
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        content_type = ""
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-type":
                content_type = value.strip().decode("latin-1")
        return status, body.decode("utf-8"), content_type

    def metrics_prometheus(self) -> str:
        """The prometheus text exposition (raises on non-200)."""
        status, body, _ = self.http_get_raw("/metrics?format=prometheus")
        if status != 200:
            raise RuntimeError(f"prometheus scrape -> {status}: {body[:200]}")
        return body

    def wait_healthy(
        self,
        attempts: int = 50,
        delay: float = 0.1,
        accept_degraded: bool = False,
    ) -> dict:
        """Poll ``/healthz`` until it answers ok; returns the payload.

        A 503 with status ``"degraded"`` (a shard is down and healing;
        reads still answer from the survivors) is returned immediately
        when ``accept_degraded`` is set, and otherwise polled through —
        the degraded window normally clears on the next healed write.
        """
        import time

        last_error: Optional[Exception] = None
        last_degraded: Optional[dict] = None
        for _ in range(attempts):
            try:
                status, payload = self.http_get("/healthz")
                if status == 200:
                    return payload
                if status == 503 and payload.get("status") == "degraded":
                    if accept_degraded:
                        return payload
                    last_degraded = payload
            except OSError as error:
                last_error = error
            time.sleep(delay)
        if last_degraded is not None:
            raise RuntimeError(
                f"service at {self.host}:{self.port} stayed degraded "
                f"(shards {last_degraded.get('degraded_shards')})"
            )
        raise RuntimeError(
            f"service at {self.host}:{self.port} never became healthy"
        ) from last_error

    def topk(self, name: str) -> dict:
        """The latest published answer of one query (raises on non-200)."""
        status, payload = self.http_get(f"/queries/{name}/topk")
        if status != 200:
            raise RuntimeError(f"topk({name!r}) -> {status}: {payload}")
        return payload

    def history(self, name: str, limit: Optional[int] = None) -> List[dict]:
        """Published answer history of one query, oldest first."""
        path = f"/queries/{name}/history"
        if limit is not None:
            path += f"?limit={limit}"
        status, payload = self.http_get(path)
        if status != 200:
            raise RuntimeError(f"history({name!r}) -> {status}: {payload}")
        return payload["answers"]

    # -- ingest path -------------------------------------------------------

    def ingest(
        self,
        actions: Iterable[Action],
        sync: bool = True,
        chunk: int = 256,
    ) -> Dict:
        """Stream actions over one connection; returns the final summary.

        Args:
            actions: Actions to send, in stream order.
            sync: End with a ``sync`` barrier and return its response —
                when True the returned dict carries the server's engine
                position (``slide``, ``time``) and ingest counters.
            chunk: Lines per ``sendall`` (purely a batching knob).

        Returns:
            The sync response, or ``{"sent": n}`` when ``sync=False``.

        Raises:
            RuntimeError: when the server reports an ingest error or the
                connection dies before the sync response arrives.
        """
        responses: List[dict] = []
        sync_response: List[Optional[dict]] = [None]
        done = threading.Event()

        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            reader_file = sock.makefile("rb")

            def drain() -> None:
                try:
                    for raw in reader_file:
                        document = json.loads(raw)
                        responses.append(document)
                        if document.get("synced"):
                            sync_response[0] = document
                            done.set()
                except (OSError, ValueError):
                    pass
                finally:
                    done.set()

            reader = threading.Thread(target=drain, daemon=True)
            reader.start()

            sent = 0
            buffer: List[bytes] = []
            for action in actions:
                buffer.append(
                    json.dumps(
                        encode_action(action), separators=(",", ":")
                    ).encode("utf-8")
                    + b"\n"
                )
                if len(buffer) >= chunk:
                    sock.sendall(b"".join(buffer))
                    sent += len(buffer)
                    buffer = []
            if buffer:
                sock.sendall(b"".join(buffer))
                sent += len(buffer)
            if sync:
                sock.sendall(b'{"cmd":"sync"}\n')
                if not done.wait(self.timeout):
                    raise RuntimeError("timed out waiting for sync response")
            sock.shutdown(socket.SHUT_WR)
            reader.join(self.timeout)

        errors = [r for r in responses if "error" in r]
        if errors:
            raise RuntimeError(f"server rejected ingest lines: {errors[:3]}")
        if sync:
            if sync_response[0] is None:
                raise RuntimeError(
                    "connection closed before the sync response"
                )
            return sync_response[0]
        return {"sent": sent}

    def send_batch(
        self,
        actions: Iterable[Action],
        batch: int = 256,
        sync: bool = True,
    ) -> Dict:
        """Stream actions with the batched wire format (one array per line).

        Each line is one JSON array of ``[time, user, parent]`` triples —
        ``batch`` actions per line, one parse and one submit loop server
        side, acks counting actions.  Semantically identical to
        :meth:`ingest`; the difference is purely wire efficiency.

        Args:
            actions: Actions to send, in stream order.
            batch: Actions per line (>= 1).
            sync: End with a ``sync`` barrier and return its response.

        Returns:
            The sync response, or ``{"sent": n}`` when ``sync=False``.

        Raises:
            RuntimeError: when the server reports an ingest error or the
                connection dies before the sync response arrives.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        responses: List[dict] = []
        sync_response: List[Optional[dict]] = [None]
        done = threading.Event()

        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            reader_file = sock.makefile("rb")

            def drain() -> None:
                try:
                    for raw in reader_file:
                        document = json.loads(raw)
                        responses.append(document)
                        if document.get("synced"):
                            sync_response[0] = document
                            done.set()
                except (OSError, ValueError):
                    pass
                finally:
                    done.set()

            reader = threading.Thread(target=drain, daemon=True)
            reader.start()

            sent = 0
            pending: List[list] = []
            for action in actions:
                pending.append(encode_action(action))
                if len(pending) >= batch:
                    sock.sendall(
                        json.dumps(pending, separators=(",", ":")).encode(
                            "utf-8"
                        )
                        + b"\n"
                    )
                    sent += len(pending)
                    pending = []
            if pending:
                sock.sendall(
                    json.dumps(pending, separators=(",", ":")).encode("utf-8")
                    + b"\n"
                )
                sent += len(pending)
            if sync:
                sock.sendall(b'{"cmd":"sync"}\n')
                if not done.wait(self.timeout):
                    raise RuntimeError("timed out waiting for sync response")
            sock.shutdown(socket.SHUT_WR)
            reader.join(self.timeout)

        errors = [r for r in responses if "error" in r]
        if errors:
            raise RuntimeError(f"server rejected ingest lines: {errors[:3]}")
        if sync:
            if sync_response[0] is None:
                raise RuntimeError(
                    "connection closed before the sync response"
                )
            return sync_response[0]
        return {"sent": sent}
