"""The published-answer cache: the serving plane's lock-free read side.

Readers (HTTP handlers, metrics) never touch the engine.  They read from
this cache, which holds only *immutable* values — frozen dataclasses and
tuples — rebound atomically by the single writer at each slide boundary.
Under CPython's memory model an attribute rebind is atomic, so a reader
always sees either the complete previous board or the complete new one,
never a torn mix; no locks, no reader/writer coordination, and the writer
never waits for readers (the HTAP split in miniature).

The cache also retains a bounded history of published boards, which is
what answers historical checkpoint queries
(``GET /queries/<name>/history``): each retained board is the answer set
as of one past slide boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.core.base import SIMResult

__all__ = ["PublishedAnswer", "AnswerBoard", "AnswerCache"]


@dataclass(frozen=True, slots=True)
class PublishedAnswer:
    """One query's answer as published at a slide boundary.

    Attributes:
        name: The query's registered name.
        time: Stream time the answer refers to (the window end).
        seeds: Selected seed users, sorted.
        value: The algorithm's influence value for the seeds.
        slide: Serving-plane slide sequence the answer was published at.
        published_at: Wall-clock publication time (``time.time()``) —
            client-facing metadata only, never used for arithmetic.
        published_monotonic: ``time.monotonic()`` at publication; age
            computations use this so an NTP step can never produce a
            negative ``answer_age_seconds``.
    """

    name: str
    time: int
    seeds: Tuple[int, ...]
    value: float
    slide: int
    published_at: float
    published_monotonic: float = 0.0

    @classmethod
    def from_result(
        cls,
        name: str,
        result: SIMResult,
        slide: int,
        published_at: float,
        published_monotonic: float = 0.0,
    ) -> "PublishedAnswer":
        """Freeze one :class:`~repro.core.base.SIMResult` for publication."""
        return cls(
            name=name,
            time=result.time,
            seeds=tuple(sorted(result.seeds)),
            value=result.value,
            slide=slide,
            published_at=published_at,
            published_monotonic=published_monotonic,
        )

    def to_json(self) -> dict:
        """JSON-safe representation served by the HTTP read path."""
        return {
            "query": self.name,
            "time": self.time,
            "seeds": list(self.seeds),
            "value": self.value,
            "slide": self.slide,
            "published_at": self.published_at,
        }


@dataclass(frozen=True, slots=True)
class AnswerBoard:
    """Every query's published answer for one slide boundary.

    ``answers`` is a plain dict built once by the writer and never mutated
    afterwards (the board is published by rebinding, not by editing).
    """

    slide: int
    time: int
    published_at: float
    answers: Mapping[str, PublishedAnswer]
    published_monotonic: float = 0.0

    @classmethod
    def from_results(
        cls,
        results: Mapping[str, SIMResult],
        slide: int,
        time: int,
        published_at: float,
        published_monotonic: float = 0.0,
    ) -> "AnswerBoard":
        """Freeze a ``query_all`` result set into one immutable board."""
        return cls(
            slide=slide,
            time=time,
            published_at=published_at,
            published_monotonic=published_monotonic,
            answers={
                name: PublishedAnswer.from_result(
                    name, result, slide, published_at, published_monotonic
                )
                for name, result in results.items()
            },
        )


class AnswerCache:
    """Atomically-swapped current board plus bounded board history.

    Single writer, any number of readers.  All reader-visible state lives
    in two attributes — the current board and an immutable history tuple —
    each replaced wholesale per publish.
    """

    def __init__(self, history: int = 128):
        """
        Args:
            history: Newest boards retained for historical reads (>= 1).
        """
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self._capacity = history
        self._board: Optional[AnswerBoard] = None
        self._history: Tuple[AnswerBoard, ...] = ()
        self._published = 0

    # -- writer side -------------------------------------------------------

    def publish(self, board: AnswerBoard) -> None:
        """Swap in a new board (single-writer; readers never block)."""
        self._history = (self._history + (board,))[-self._capacity :]
        self._board = board
        self._published += 1

    # -- reader side -------------------------------------------------------

    @property
    def board(self) -> Optional[AnswerBoard]:
        """The latest published board (``None`` before the first slide)."""
        return self._board

    @property
    def published(self) -> int:
        """Boards published so far."""
        return self._published

    def answer(self, name: str) -> PublishedAnswer:
        """The latest published answer of one query.

        Raises:
            LookupError: when nothing is published yet or ``name`` is not
                on the latest board.
        """
        board = self._board
        if board is None:
            raise LookupError("no answers published yet")
        try:
            return board.answers[name]
        except KeyError:
            raise LookupError(
                f"unknown query {name!r}; published: {sorted(board.answers)}"
            ) from None

    def history_for(
        self, name: str, limit: Optional[int] = None
    ) -> List[PublishedAnswer]:
        """Published answers of one query, oldest first.

        Args:
            name: The query name.
            limit: Newest entries to return (default: all retained).
        """
        boards = self._history  # one atomic read; iteration stays consistent
        answers = [
            board.answers[name] for board in boards if name in board.answers
        ]
        if limit is not None and limit >= 0:
            answers = answers[len(answers) - min(limit, len(answers)) :]
        return answers
