"""The online serving plane: asyncio ingest/query server over the engine.

``repro.service`` turns the library into a running system (the ROADMAP's
"serves heavy traffic" north star).  The architecture is the HTAP split
the related work argues for — one writer, many snapshot-isolated readers:

* a **single-writer ingest loop** (:mod:`repro.service.ingest`) drains a
  bounded queue, coalesces arriving actions into slides (count- or
  time-based flush), and is the only code that ever touches the engine;
* a **lock-free read path** (:mod:`repro.service.server`) answers
  ``/healthz``, ``/metrics``, ``/queries/<name>/topk``, and historical
  ``/queries/<name>/history`` requests from an immutable published-answer
  cache (:mod:`repro.service.cache`) swapped atomically at slide
  boundaries — readers never observe mid-slide state and never block the
  writer;
* a **line-protocol ingest endpoint** on the same port (one JSON action
  per line, batched acks, ``sync`` barrier) with natural TCP backpressure
  when the queue is full;
* optional durability: wrap the engine in
  :class:`~repro.persistence.engine.RecoverableEngine` and the server is
  crash-recoverable — ``kill -9`` it, restart with the same state dir,
  replay the stream, and the answers converge (stale actions are dropped
  idempotently).

Start one from the shell with ``repro-stream serve`` or embed one with
:class:`~repro.service.runner.ServiceRunner`; drive it with
:class:`~repro.service.client.ServiceClient` or ``scripts/load_gen.py``.
"""

from repro.service.cache import AnswerBoard, AnswerCache, PublishedAnswer
from repro.service.config import ServiceConfig
from repro.service.ingest import IngestLoop, IngestStats
from repro.service.server import ReproService

__all__ = [
    "AnswerBoard",
    "AnswerCache",
    "PublishedAnswer",
    "ServiceConfig",
    "IngestLoop",
    "IngestStats",
    "ReproService",
]
