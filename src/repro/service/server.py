"""The asyncio ingest/query server: one port, two protocols.

:class:`ReproService` listens on a single TCP port and sniffs each
connection's first line:

* a line starting with ``{`` or ``[`` speaks the **ingest line protocol**
  — one JSON action per line (``{"time": t, "user": u, "parent": p}`` or
  the compact ``[t, u, p]`` triple), or one JSON *array of actions* per
  line (``[[t1,u1,p1],[t2,u2,p2],...]`` — the batched wire format, one
  syscall and one parse per batch).  Acks count actions, not lines, and
  fire once per crossed ``ack_every`` boundary.  Two control commands
  ride the same stream: ``{"cmd": "flush"}`` forces the partial slide
  out and ``{"cmd": "sync"}`` is a barrier that answers with the engine
  position once everything submitted before it is processed and
  published;
* anything else is parsed as an **HTTP request** — the lock-free read
  path.  ``GET /healthz``, ``GET /metrics``, ``GET /queries``,
  ``GET /queries/<name>/topk`` and ``GET /queries/<name>/history?limit=n``
  are answered as JSON from the immutable published-answer cache (and,
  for metrics, from monotonically-updated scalar counters — reads the GIL
  makes atomic); readers never touch the engine and never block the
  writer.

Shutdown is graceful: on SIGTERM/SIGINT (or
:meth:`ReproService.request_shutdown`) the server stops accepting, stops
the ingest loop (flushing the partial slide), and closes the engine —
which seals a durable engine with a final snapshot, so the next start
replays zero WAL slides.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Callable, Optional, Tuple
from urllib.parse import unquote

from repro.core.actions import ROOT, Action
from repro.persistence.engine import RecoverableEngine
from repro.service.cache import AnswerCache
from repro.service.config import ServiceConfig
from repro.service.ingest import IngestLoop, as_board
from repro.telemetry import (
    MetricsFlightRecorder,
    MetricsRegistry,
    SamplingProfiler,
    TraceLog,
    TraceRecorder,
    render_prometheus,
)
from repro.telemetry.profiler import collapse_counts
from repro.telemetry.timeseries import resolutions_for
from repro.telemetry.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.telemetry.slo import AlertLog, SLOMonitor, default_slos, parse_slo_spec

__all__ = ["ReproService"]

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
    500: "Internal Server Error",
}


def _encode_json_line(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


class ReproService:
    """Serve one engine: single-writer ingest, lock-free snapshot reads."""

    def __init__(self, engine: RecoverableEngine, config: ServiceConfig):
        """
        Args:
            engine: The engine to serve — typically a
                :class:`~repro.persistence.engine.RecoverableEngine`
                wrapping a :class:`~repro.core.multi.MultiQueryEngine`
                board (durable when opened with a state dir).
            config: Serving-plane knobs.
        """
        engine_shards = getattr(engine, "shard_count", 1)
        if config.shards != engine_shards:
            raise ValueError(
                f"config.shards={config.shards} but the engine has "
                f"{engine_shards} shard(s); build the engine to match, "
                "e.g. ShardedEngine.open(factory, config.shards, "
                "backend=config.shard_backend)"
            )
        if engine_shards > 1 and engine.backend_name != config.shard_backend:
            raise ValueError(
                f"config.shard_backend={config.shard_backend!r} but the "
                f"engine runs the {engine.backend_name!r} backend"
            )
        self._engine = engine
        self._config = config
        self._cache = AnswerCache(history=config.history)
        self._registry = MetricsRegistry()
        self._trace_log = (
            TraceLog(config.trace_log) if config.trace_log else None
        )
        self._recorder = TraceRecorder(
            capacity=config.trace_ring,
            slow_slide_ms=config.slow_slide_ms,
            trace_log=self._trace_log,
            registry=self._registry,
        )
        self._ingest = IngestLoop(
            engine,
            self._cache,
            slide=config.slide,
            flush_interval=config.flush_interval,
            queue_capacity=config.queue_capacity,
            writer_retries=config.writer_retries,
            recorder=self._recorder,
            registry=self._registry,
        )
        self._multi = as_board(engine.algorithm)
        # Retained observability: flight recorder -> SLO monitor ->
        # profiler.  The recorder's pre-sample hook is _sync_registry so
        # every mirrored scalar becomes a retained series; the SLO
        # monitor evaluates as its post-sample hook, on the sampler
        # thread, right after fresh points land.
        self._alert_log = (
            AlertLog(config.alert_log) if config.alert_log else None
        )
        slos = list(default_slos()) if config.slo_defaults else []
        slos.extend(parse_slo_spec(spec) for spec in config.slo_specs)
        self._flight: Optional[MetricsFlightRecorder] = None
        self._slo_monitor: Optional[SLOMonitor] = None
        if config.flight_recorder:
            self._flight = MetricsFlightRecorder(
                self._registry,
                interval=config.sample_interval,
                resolutions=resolutions_for(config.sample_interval),
                pre_sample=self._sync_registry,
                post_sample=self._evaluate_slos,
            )
            self._slo_monitor = SLOMonitor(
                self._flight,
                slos,
                alert_log=self._alert_log,
                registry=self._registry,
            )
        self._profiler = SamplingProfiler(hz=config.profile_hz)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown = asyncio.Event()
        self._connections: set = set()
        self._started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._port: Optional[int] = None
        self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        """Graft layer-owned histograms into the registry (scrape-once)."""
        registry = self._registry
        fsync_hist = getattr(self._engine, "fsync_hist", None)
        if fsync_hist is not None:
            registry.attach(
                "repro_wal_fsync_seconds",
                "histogram",
                fsync_hist,
                "WAL append + fsync latency per durable slide",
            )
        snapshot_hist = getattr(self._engine, "snapshot_hist", None)
        if snapshot_hist is not None:
            registry.attach(
                "repro_snapshot_seconds",
                "histogram",
                snapshot_hist,
                "Full-state snapshot write latency",
            )
        heal_hist = getattr(self._engine, "heal_histogram", None)
        if heal_hist is not None:
            registry.attach(
                "repro_shard_heal_seconds",
                "histogram",
                heal_hist,
                "Shard restart-and-restore (heal) duration",
            )

    # -- introspection -----------------------------------------------------

    @property
    def host(self) -> str:
        """The configured listen address."""
        return self._config.host

    @property
    def port(self) -> Optional[int]:
        """The bound port (resolves a configured port of 0 after start)."""
        return self._port

    @property
    def cache(self) -> AnswerCache:
        """The published-answer cache (the read path's only data source)."""
        return self._cache

    @property
    def ingest(self) -> IngestLoop:
        """The single-writer ingest loop."""
        return self._ingest

    @property
    def engine(self) -> RecoverableEngine:
        """The served engine."""
        return self._engine

    @property
    def registry(self) -> MetricsRegistry:
        """The telemetry registry backing ``/metrics``."""
        return self._registry

    @property
    def recorder(self) -> TraceRecorder:
        """The per-slide stage-trace recorder."""
        return self._recorder

    @property
    def flight_recorder(self) -> Optional[MetricsFlightRecorder]:
        """The retained-metrics sampler (None when disabled)."""
        return self._flight

    @property
    def slo_monitor(self) -> Optional[SLOMonitor]:
        """The burn-rate alert monitor (None when the recorder is off)."""
        return self._slo_monitor

    @property
    def profiler(self) -> SamplingProfiler:
        """The continuous wall-clock sampling profiler."""
        return self._profiler

    def _evaluate_slos(self, t: float) -> None:
        """Flight-recorder post-sample hook: re-evaluate every objective."""
        if self._slo_monitor is not None:
            self._slo_monitor.evaluate(t)

    def query_names(self) -> list:
        """Names the read path serves answers under."""
        if self._multi is not None:
            return self._multi.names()
        return ["main"]

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and spawn the ingest writer."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        # Warm the read path from recovered state so a restarted server
        # answers immediately, even before any new slide arrives.
        await self._loop.run_in_executor(None, self._ingest.publish_recovered)
        self._ingest.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._config.host,
            self._config.port,
            limit=1 << 20,  # one action per line: 1 MiB is already generous
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._flight is not None:
            self._flight.start()
        if self._config.profile:
            self._profiler.start()

    async def stop(self) -> None:
        """Graceful shutdown: drain, flush, and seal.

        Stops accepting, cancels live connections (producers), flushes the
        ingest loop's partial slide, and closes the engine — a durable
        engine writes its final snapshot here (the shutdown seal).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self._ingest.stop()
        # A dead writer may have left the engine mid-slide; sealing that
        # state would poison recovery.  Skip the final snapshot and let
        # the next open restore the last good snapshot + WAL tail.
        seal = self._ingest.error is None
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._engine.close(snapshot=seal)
        )
        if self._flight is not None:
            self._flight.stop()
        self._profiler.stop()
        if self._slo_monitor is not None:
            self._slo_monitor.close()
        self._recorder.close()

    def request_shutdown(self) -> None:
        """Ask :meth:`run` to exit (signal-handler / same-loop safe)."""
        self._shutdown.set()

    def request_shutdown_threadsafe(self) -> None:
        """Ask :meth:`run` to exit from another thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    async def run(
        self,
        *,
        install_signal_handlers: bool = True,
        on_ready: Optional[Callable[["ReproService"], None]] = None,
    ) -> None:
        """Start, serve until shutdown is requested, then stop gracefully.

        Args:
            install_signal_handlers: Route SIGTERM/SIGINT to a graceful
                shutdown (the CLI path; embedded runners pass False).
            on_ready: Called once the socket is bound (the port is known).
        """
        await self.start()
        try:
            if install_signal_handlers:
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.add_signal_handler(signum, self.request_shutdown)
            if on_ready is not None:
                on_ready(self)
            await self._shutdown.wait()
        finally:
            await self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            first = await reader.readline()
            if first:
                if first.lstrip()[:1] in (b"{", b"["):
                    await self._serve_ingest(first, reader, writer)
                else:
                    await self._serve_http(first, reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ValueError,  # readline() raises it for over-limit lines
        ):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # -- ingest protocol ---------------------------------------------------

    async def _serve_ingest(self, first: bytes, reader, writer) -> None:
        received = 0
        line = first
        while line:
            stripped = line.strip()
            if stripped:
                before = received
                response, received = await self._ingest_line(stripped, received)
                if response is not None:
                    writer.write(_encode_json_line(response))
                    await writer.drain()
                else:
                    # Acks count *actions* (a batched line advances the
                    # counter by its batch size), firing once per crossed
                    # ack_every boundary.
                    every = self._config.ack_every
                    if received // every > before // every:
                        writer.write(_encode_json_line(self._ack(received)))
                        await writer.drain()
            line = await reader.readline()

    async def _ingest_line(
        self, raw: bytes, received: int
    ) -> Tuple[Optional[dict], int]:
        """Process one ingest line (action, batch, or command).

        Returns ``(response, new_received)``: a dict response is written
        immediately, and ``new_received`` is the running *action* count
        (a batched line — a JSON array whose first element is itself an
        action object or triple — advances it by the batch size).
        """
        try:
            document = json.loads(raw)
        except ValueError as error:
            self._ingest.stats.rejected_lines += 1
            received += 1
            return {"error": f"unparseable line: {error}", "line": received}, received
        if isinstance(document, dict) and "cmd" in document:
            return await self._ingest_command(document, received), received
        if (
            isinstance(document, (list, tuple))
            and document
            and isinstance(document[0], (list, tuple, dict))
        ):
            batch = document
        else:
            batch = [document]
        try:
            actions = [self._decode_action(item) for item in batch]
        except (ValueError, TypeError, KeyError) as error:
            # A batch rejects atomically: no prefix is submitted.
            self._ingest.stats.rejected_lines += 1
            received += 1
            return {"error": f"invalid action: {error}", "line": received}, received
        received += len(actions)
        for action in actions:
            try:
                await self._ingest.submit(action)
            except RuntimeError as error:
                return {"error": str(error), "line": received}, received
        return None, received

    async def _ingest_command(self, document: dict, received: int) -> Optional[dict]:
        command = document["cmd"]
        if command == "flush":
            try:
                await self._ingest.request_flush()
            except RuntimeError as error:
                return {"error": str(error), "line": received}
            return None
        if command == "sync":
            try:
                await self._ingest.sync()
            except RuntimeError as error:
                return {"error": str(error), "line": received}
            stats = self._ingest.stats
            board = self._cache.board
            return {
                "synced": True,
                "slide": self._ingest.slides_processed,
                "time": self._engine.now,
                "accepted": stats.accepted,
                "dropped_stale": stats.dropped_stale,
                "rejected": stats.rejected_lines,
                "published_slide": board.slide if board is not None else 0,
            }
        self._ingest.stats.rejected_lines += 1
        return {"error": f"unknown cmd {command!r}", "line": received}

    @staticmethod
    def _decode_action(document) -> Action:
        """An Action from ``[t, u, p]`` or ``{"time", "user", "parent"}``."""
        if isinstance(document, (list, tuple)):
            if len(document) != 3:
                raise ValueError(
                    f"action triple needs 3 fields, got {len(document)}"
                )
            time_, user, parent = document
        elif isinstance(document, dict):
            time_ = document["time"]
            user = document["user"]
            parent = document.get("parent", ROOT)
        else:
            raise TypeError(
                f"expected an action object or triple, got "
                f"{type(document).__name__}"
            )
        if parent is None:
            parent = ROOT
        return Action(time=time_, user=user, parent=parent)

    def _ack(self, received: int) -> dict:
        stats = self._ingest.stats
        return {
            "acked": received,
            "accepted": stats.accepted,
            "dropped_stale": stats.dropped_stale,
            "rejected": stats.rejected_lines,
        }

    # -- HTTP read path ----------------------------------------------------

    async def _serve_http(self, first: bytes, reader, writer) -> None:
        try:
            parts = first.decode("latin-1").split()
            method, target = parts[0], parts[1]
        except (IndexError, UnicodeDecodeError):
            await self._respond(writer, 400, {"error": "malformed request"})
            return
        # Drain headers (the read path never needs a body), bounded so a
        # client streaming endless header lines cannot pin the task.
        for _ in range(256):
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        else:
            await self._respond(writer, 400, {"error": "too many headers"})
            return
        if method != "GET":
            await self._respond(
                writer, 405, {"error": f"method {method} not allowed"}
            )
            return
        if target.partition("?")[0] == "/debug/profile":
            # The only route that must await (it spans a sampling
            # window); everything else stays on the sync dispatch.
            result = await self._route_debug_profile(
                self._parse_target(target)[1]
            )
        else:
            result = self._route(target)
        await self._respond(writer, *result)

    async def _respond(
        self,
        writer,
        status: int,
        payload,
        content_type: Optional[str] = None,
    ) -> None:
        """Write one response; dict payloads are JSON, str is sent raw."""
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = content_type or "text/plain; charset=utf-8"
        else:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            content_type = content_type or "application/json"
        reason = _HTTP_REASONS.get(status, "OK")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _parse_target(target: str) -> Tuple[str, dict]:
        """Split one GET target into ``(path, query params)``."""
        path, _, query_string = target.partition("?")
        params = {}
        for pair in query_string.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = unquote(value)
        return path, params

    def _route(self, target: str) -> tuple:
        """Dispatch one GET target to ``(status, payload[, content_type])``."""
        path, params = self._parse_target(target)
        if path == "/healthz":
            return self._route_healthz()
        if path == "/metrics":
            return self._route_metrics(params)
        if path == "/metrics/prometheus":
            return self._route_metrics({"format": "prometheus"})
        if path == "/metrics/history":
            return self._route_metrics_history(params)
        if path == "/queries":
            return 200, {"queries": self.query_names()}
        segments = [s for s in path.split("/") if s]
        if len(segments) == 3 and segments[0] == "queries":
            name, endpoint = segments[1], segments[2]
            if endpoint == "topk":
                return self._route_topk(name)
            if endpoint == "history":
                return self._route_history(name, params)
        return 404, {"error": f"no route for {path}"}

    def _route_metrics(self, params: dict) -> tuple:
        """``/metrics`` with format negotiation (json default)."""
        fmt = params.get("format", "json")
        if fmt == "json":
            return 200, self._metrics_payload()
        if fmt == "prometheus":
            self._sync_registry()
            return (
                200,
                render_prometheus(self._registry),
                PROMETHEUS_CONTENT_TYPE,
            )
        return 400, {
            "error": f"unknown metrics format {fmt!r}",
            "formats": ["json", "prometheus"],
            "hint": "GET /metrics?format=prometheus or /metrics/prometheus",
        }

    def _route_metrics_history(self, params: dict) -> tuple:
        """``/metrics/history``: retained series from the flight recorder.

        Without ``series`` the response is the catalog (every retained
        series key + recorder stats); with ``series`` it is that series'
        downsampled points, optionally bounded by ``window`` seconds or
        pinned to an exact ``resolution``.
        """
        if self._flight is None:
            return 503, {
                "error": "flight recorder disabled",
                "hint": "start the service with flight_recorder=True",
            }
        series = params.get("series")
        if not series:
            return 200, {
                "series": self._flight.series_names(),
                "recorder": self._flight.stats(),
            }
        window = resolution = None
        try:
            if "window" in params:
                window = float(params["window"])
            if "resolution" in params:
                resolution = float(params["resolution"])
        except ValueError:
            return 400, {
                "error": "window and resolution must be numbers",
                "got": {k: params[k] for k in ("window", "resolution")
                        if k in params},
            }
        try:
            return 200, self._flight.history(
                series, window=window, resolution=resolution
            )
        except KeyError:
            return 404, {
                "error": f"unknown series {series!r}",
                "hint": "GET /metrics/history for the catalog",
            }
        except ValueError as error:
            return 400, {"error": str(error)}

    async def _route_debug_profile(self, params: dict) -> tuple:
        """``/debug/profile?seconds=N``: collapsed stacks of a fresh window.

        Works whether or not the continuous profiler is running: when it
        is, the window is a snapshot diff around an async sleep; when it
        is not, the profiler is started just for this window and stopped
        after.  The sleep is ``asyncio.sleep`` — the event loop keeps
        serving while the window elapses.
        """
        try:
            seconds = float(params.get("seconds", "2"))
        except ValueError:
            return 400, {"error": f"bad seconds {params.get('seconds')!r}"}
        if not 0 < seconds <= 60:
            return 400, {"error": f"seconds must be in (0, 60], got {seconds}"}
        profiler = self._profiler
        started_here = not profiler.running
        if started_here:
            profiler.start()
        before = profiler.counts()
        await asyncio.sleep(seconds)
        after = profiler.counts()
        if started_here:
            profiler.stop()
        delta = {
            stack: count - before.get(stack, 0)
            for stack, count in after.items()
            if count - before.get(stack, 0) > 0
        }
        return 200, collapse_counts(delta), "text/plain; charset=utf-8"

    def _route_healthz(self) -> Tuple[int, dict]:
        error = self._ingest.error
        payload = {
            "status": "ok" if error is None else "failed",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "slides": self._ingest.slides_processed,
            "published": self._cache.published,
            "queries": self.query_names(),
            "durable": self._engine.store is not None,
        }
        if error is not None:
            payload["error"] = str(error)
            return 500, payload
        if getattr(self._engine, "degraded", False):
            # A shard is down and healing: reads still answer (merged
            # from the survivors), so this is 503 "degraded", not the
            # 500 "failed" of a dead writer.
            payload["status"] = "degraded"
            payload["degraded_shards"] = self._engine.degraded_shards
            supervision = self._engine.supervision_stats()
            payload["restarts"] = supervision["restarts"]
            payload["escalations"] = supervision["escalations"]
            payload["degraded_seconds"] = supervision["degraded_seconds"]
            return 503, payload
        if self._slo_monitor is not None:
            active = self._slo_monitor.active_alerts()
            if active:
                payload["alerts"] = [a.to_json() for a in active]
                if self._slo_monitor.page_active():
                    # A page-severity burn-rate alert is the service
                    # saying "I am violating my latency/freshness
                    # budget" — surfaced exactly like degradation so
                    # load balancers and probes can react.
                    payload["status"] = "alerting"
                    return 503, payload
        return 200, payload

    def _route_topk(self, name: str) -> Tuple[int, dict]:
        if name not in self.query_names():
            return 404, {
                "error": f"unknown query {name!r}",
                "queries": self.query_names(),
            }
        try:
            answer = self._cache.answer(name)
        except LookupError as error:
            return 503, {"error": str(error)}
        return 200, answer.to_json()

    def _route_history(self, name: str, params: dict) -> Tuple[int, dict]:
        if name not in self.query_names():
            return 404, {
                "error": f"unknown query {name!r}",
                "queries": self.query_names(),
            }
        limit = None
        if "limit" in params:
            try:
                limit = int(params["limit"])
            except ValueError:
                return 400, {"error": f"bad limit {params['limit']!r}"}
        answers = self._cache.history_for(name, limit)
        return 200, {
            "query": name,
            "answers": [answer.to_json() for answer in answers],
        }

    @staticmethod
    def _answer_age_seconds(answer) -> float:
        """Age of a published answer on the monotonic clock.

        ``published_monotonic`` is stamped at publish time with
        ``time.monotonic()``, so an NTP step between publish and scrape
        can never make the age negative (the old wall-clock computation
        could).
        """
        return round(time.monotonic() - answer.published_monotonic, 3)

    def _metrics_payload(self) -> dict:
        ingest = self._ingest.stats.snapshot()
        ingest["queue_depth"] = self._ingest.queue_depth
        ingest["queue_capacity"] = self._ingest.queue_capacity
        board = self._cache.board
        queries = {}
        per_query_stats = (
            self._multi.query_stats() if self._multi is not None else {}
        )
        for name in self.query_names():
            entry = dict(per_query_stats.get(name, {}))
            if board is not None and name in board.answers:
                answer = board.answers[name]
                entry.update(
                    {
                        "answer_time": answer.time,
                        "answer_slide": answer.slide,
                        "answer_value": answer.value,
                        "answer_age_seconds": self._answer_age_seconds(
                            answer
                        ),
                        "answer_lag_slides": (
                            self._ingest.slides_processed - answer.slide
                        ),
                    }
                )
            queries[name] = entry
        engine = {
            "slides": self._engine.slides_processed,
            "time": self._engine.now,
            "durable": self._engine.store is not None,
            "snapshots_written": self._engine.snapshots_written,
            "replayed_slides": self._engine.replayed_slides,
        }
        shard_count = getattr(self._engine, "shard_count", None)
        if shard_count is not None:
            engine["shards"] = shard_count
            engine["shard_backend"] = self._engine.backend_name
            engine["ingest_mode"] = getattr(
                self._engine, "ingest_mode", "broadcast"
            )
        if hasattr(self._engine, "supervision_stats"):
            engine["degraded"] = self._engine.degraded
            engine["degraded_shards"] = self._engine.degraded_shards
            engine["supervision"] = self._engine.supervision_stats()
        self._sync_registry()
        telemetry = {
            "metrics": self._registry.snapshot(),
            "traces": self._recorder.stats(),
            "profiler": self._profiler.stats(),
        }
        if self._flight is not None:
            telemetry["flight_recorder"] = self._flight.stats()
        if self._slo_monitor is not None:
            telemetry["slo"] = self._slo_monitor.snapshot()
        return {
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "ingest": ingest,
            "engine": engine,
            "queries": queries,
            "telemetry": telemetry,
        }

    def _sync_registry(self) -> None:
        """Copy scalar stats into the registry at scrape time.

        Counters/gauges that already live as plain attributes on the
        ingest loop, engine, and supervisor are mirrored here rather
        than instrumented at the source — the hot path stays untouched
        and a scrape pays the (tiny) copy cost instead.
        """
        registry = self._registry
        stats = self._ingest.stats
        registry.counter(
            "repro_ingest_accepted_total", "Actions admitted into a slide"
        ).value = float(stats.accepted)
        registry.counter(
            "repro_ingest_dropped_stale_total",
            "Actions dropped for arriving at or before the stream clock",
        ).value = float(stats.dropped_stale)
        registry.counter(
            "repro_ingest_rejected_lines_total",
            "Ingest lines rejected as unparseable or invalid",
        ).value = float(stats.rejected_lines)
        registry.counter(
            "repro_ingest_slides_total", "Slides flushed into the engine"
        ).value = float(stats.slides)
        registry.counter(
            "repro_ingest_writer_retries_total",
            "Transient engine failures retried by the writer",
        ).value = float(stats.writer_retries)
        registry.gauge(
            "repro_ingest_queue_depth", "Actions waiting in the bounded queue"
        ).set(float(self._ingest.queue_depth))
        registry.gauge(
            "repro_ingest_queue_capacity", "Bounded ingest queue capacity"
        ).set(float(self._ingest.queue_capacity))
        registry.gauge(
            "repro_ingest_rate_actions_per_sec",
            "EWMA ingest rate (instantaneous)",
        ).set(round(stats.rate.rate, 3))
        registry.gauge(
            "repro_ingest_lifetime_rate_actions_per_sec",
            "Undecayed ingest rate since start",
        ).set(round(stats.rate.lifetime_rate, 3))
        registry.gauge(
            "repro_uptime_seconds", "Service uptime on the monotonic clock"
        ).set(round(time.monotonic() - self._started_monotonic, 3))
        if self._flight is not None:
            registry.gauge(
                "repro_flight_sampler_lag_seconds",
                "How far behind schedule the flight-recorder sampler ran",
            ).set(round(self._flight.sampler_lag_seconds, 6))
            registry.counter(
                "repro_flight_samples_total",
                "Sample sweeps the flight recorder has taken",
            ).value = float(self._flight.samples_taken)
        registry.gauge(
            "repro_engine_slides", "Slides the engine has processed"
        ).set(float(self._engine.slides_processed))
        registry.gauge(
            "repro_engine_stream_time", "Engine stream clock (action time)"
        ).set(float(self._engine.now))
        registry.counter(
            "repro_engine_snapshots_written_total", "Snapshots written"
        ).value = float(self._engine.snapshots_written)
        registry.gauge(
            "repro_engine_replayed_slides", "WAL slides replayed at open"
        ).set(float(self._engine.replayed_slides))
        board = self._cache.board
        if board is not None:
            for name, answer in board.answers.items():
                registry.gauge(
                    "repro_answer_age_seconds",
                    "Seconds since this query's answer was published",
                    query=name,
                ).set(self._answer_age_seconds(answer))
                registry.gauge(
                    "repro_answer_lag_slides",
                    "Slides the published answer trails the writer by",
                    query=name,
                ).set(float(self._ingest.slides_processed - answer.slide))
        if hasattr(self._engine, "supervision_stats"):
            supervision = self._engine.supervision_stats()
            for state in supervision["shards"]:
                shard = str(state["shard"])
                registry.counter(
                    "repro_shard_busy_seconds_total",
                    "Wall seconds this shard spent processing slides "
                    "(cumulative across worker restarts)",
                    shard=shard,
                ).value = float(state.get("busy_seconds", 0.0))
                registry.counter(
                    "repro_shard_restarts_total",
                    "Times this shard's worker was restarted",
                    shard=shard,
                ).value = float(state.get("restarts", 0))
                registry.counter(
                    "repro_shard_slides_total",
                    "Slides this shard's worker has processed",
                    shard=shard,
                ).value = float(state.get("slides", 0))
                registry.gauge(
                    "repro_shard_up",
                    "1 when the shard is serving, 0 while down/healing",
                    shard=shard,
                ).set(1.0 if state.get("state") == "up" else 0.0)
                # The replicated-work accounting: routed shards consume
                # only the influence records routed to them; broadcast
                # shards each replicate the full action stream.
                if "routed_records" in state:
                    registry.counter(
                        "repro_shard_routed_records_total",
                        "Routed influence records this shard consumed",
                        shard=shard,
                    ).value = float(state["routed_records"] or 0)
                elif "actions" in state:
                    registry.counter(
                        "repro_shard_actions_total",
                        "Stream actions this shard consumed (broadcast "
                        "replicates the stream to every shard)",
                        shard=shard,
                    ).value = float(state["actions"] or 0)
            registry.gauge(
                "repro_shards_degraded", "Shards currently down or healing"
            ).set(float(len(supervision.get("degraded_shards", ()))))
            registry.gauge(
                "repro_shard_straggler_seconds",
                "Busy-time gap between slowest and fastest shard last slide",
            ).set(float(supervision.get("straggler_seconds", 0.0)))
            registry.counter(
                "repro_shard_call_timeouts_total",
                "Shard calls that timed out at the supervisor",
            ).value = float(supervision.get("call_timeouts", 0))
            resolver = supervision.get("resolver")
            if resolver is not None:
                registry.counter(
                    "repro_resolver_actions_total",
                    "Stream actions resolved once at the routed facade",
                ).value = float(resolver["actions_processed"])
                registry.gauge(
                    "repro_routed_records_last_slide",
                    "Influence records routed to shards on the last slide",
                ).set(float(supervision.get("last_routed_records", 0)))
