"""Deterministic fault injection for chaos drills.

A :class:`~repro.faults.plan.FaultPlan` is a small, serializable script of
worker failures — *kill this shard when it is about to process slide s*,
*hang that call for t seconds*, *drop a reply*, *corrupt the WAL tail
before a restart*.  Plans are plain JSON, so every chaos test and every
``experiments/chaos.py`` scenario is seeded and exactly reproducible: the
same plan against the same stream produces the same incidents, the same
restarts, and the same merged answers.

The plan travels into shard workers through the backend host arguments
(:class:`~repro.faults.inject.WorkerFaultInjector` fires worker-side
faults) while the supervising facade applies storage faults
(:class:`~repro.faults.inject.FacadeFaultInjector` corrupts WAL tails
between kill and restart).  With no plan armed, none of the hooks cost
anything on the hot path.
"""

from repro.faults.inject import (
    FacadeFaultInjector,
    WorkerFaultInjector,
    WorkerKilled,
)
from repro.faults.plan import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
)

__all__ = [
    "FAULT_KINDS",
    "FacadeFaultInjector",
    "Fault",
    "FaultPlan",
    "WorkerFaultInjector",
    "WorkerKilled",
]
