"""Serializable fault plans: the script a chaos drill replays.

A plan is a list of :class:`Fault` entries, each naming a kind, a target
shard, and a trigger.  Worker-side kinds fire when the shard worker is
about to process a specific slide sequence number (deterministic in the
stream, not in wall-clock time); the facade-side ``corrupt_wal_tail`` kind
fires while the supervisor is restarting the shard after an incident.
Every fault fires at most once per worker lifetime, and restarted workers
re-arm only the faults *beyond* the incident that killed their
predecessor, so a plan never re-kills a healing shard on the retried
slide.

The JSON document::

    {
      "format": 1,
      "seed": 7,
      "faults": [
        {"kind": "kill", "shard": 1, "at_slide": 3},
        {"kind": "hang", "shard": 0, "at_slide": 5, "seconds": 2.0},
        {"kind": "drop_reply", "shard": 1, "at_slide": 8},
        {"kind": "corrupt_wal_tail", "shard": 1, "at_slide": 3, "nbytes": 4}
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan"]

#: Format tag of the plan document.
PLAN_FORMAT_VERSION = 1

#: Faults that fire inside a shard worker, keyed on the slide it is about
#: to process.
WORKER_KINDS = ("kill", "hang", "drop_reply")

#: Faults the supervising facade applies to a shard's durable state while
#: the worker is down (between kill and restart).
FACADE_KINDS = ("corrupt_wal_tail",)

FAULT_KINDS = WORKER_KINDS + FACADE_KINDS


@dataclass(frozen=True, slots=True)
class Fault:
    """One scripted failure.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        shard: The target shard id.
        at_slide: Worker kinds: the slide sequence number (1-based) the
            worker is about to process when the fault fires.
            ``corrupt_wal_tail``: the earliest incident slide the
            corruption applies to (0 = any restart).
        seconds: ``hang`` only — how long the worker sleeps before
            handling the command.
        nbytes: ``corrupt_wal_tail`` only — how many tail bytes to flip.
    """

    kind: str
    shard: int
    at_slide: int = 0
    seconds: float = 0.0
    nbytes: int = 4

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.kind in WORKER_KINDS and self.at_slide < 1:
            raise ValueError(
                f"{self.kind!r} fault needs at_slide >= 1 (slides are "
                f"1-based), got {self.at_slide}"
            )
        if self.at_slide < 0:
            raise ValueError(f"at_slide must be >= 0, got {self.at_slide}")
        if self.kind == "hang" and self.seconds <= 0.0:
            raise ValueError(
                f"hang fault needs seconds > 0, got {self.seconds}"
            )
        if self.kind == "corrupt_wal_tail" and self.nbytes < 1:
            raise ValueError(f"nbytes must be >= 1, got {self.nbytes}")

    def to_state(self) -> dict:
        """Plain-JSON document of this fault (only the relevant knobs)."""
        doc = {"kind": self.kind, "shard": self.shard, "at_slide": self.at_slide}
        if self.kind == "hang":
            doc["seconds"] = self.seconds
        if self.kind == "corrupt_wal_tail":
            doc["nbytes"] = self.nbytes
        return doc

    @classmethod
    def from_state(cls, state: dict) -> "Fault":
        """Rebuild a fault from its :meth:`to_state` document."""
        known = {"kind", "shard", "at_slide", "seconds", "nbytes"}
        unknown = set(state) - known
        if unknown:
            raise ValueError(f"unknown fault fields {sorted(unknown)}")
        return cls(**state)


class FaultPlan:
    """An immutable, serializable list of scripted faults."""

    def __init__(self, faults: Sequence[Fault] = (), seed: Optional[int] = None):
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self.seed = seed
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(
                    f"FaultPlan takes Fault entries, got {type(fault).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FaultPlan)
            and self.faults == other.faults
            and self.seed == other.seed
        )

    def __repr__(self) -> str:
        return f"FaultPlan(faults={list(self.faults)!r}, seed={self.seed!r})"

    def for_shard(self, shard: int, kinds: Sequence[str] = WORKER_KINDS) -> Tuple[Fault, ...]:
        """The plan's faults targeting ``shard``, filtered to ``kinds``."""
        return tuple(
            f for f in self.faults if f.shard == shard and f.kind in kinds
        )

    def max_shard(self) -> int:
        """The highest shard id any fault targets (-1 for an empty plan)."""
        return max((f.shard for f in self.faults), default=-1)

    # -- serialization -----------------------------------------------------

    def to_state(self) -> dict:
        """Plain-JSON plan document (see module docstring)."""
        doc = {
            "format": PLAN_FORMAT_VERSION,
            "faults": [f.to_state() for f in self.faults],
        }
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    @classmethod
    def from_state(cls, state: dict) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_state` document."""
        if not isinstance(state, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(state).__name__}"
            )
        version = state.get("format")
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported fault plan format {version!r} "
                f"(this build reads format {PLAN_FORMAT_VERSION})"
            )
        faults = [Fault.from_state(doc) for doc in state.get("faults", [])]
        return cls(faults, seed=state.get("seed"))

    def to_json(self) -> str:
        """The plan as a JSON string."""
        return json.dumps(self.to_state(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        return cls.from_state(json.loads(text))

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_json(pathlib.Path(path).read_text())

    def save(self, path) -> None:
        """Write the plan to a JSON file."""
        pathlib.Path(path).write_text(self.to_json() + "\n")

    # -- generators --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        shards: int,
        slides: int,
        kills: int = 1,
        hangs: int = 0,
        hang_seconds: float = 1.0,
    ) -> "FaultPlan":
        """A seeded random plan: the same seed always yields the same plan.

        Kills and hangs are spread over distinct ``(shard, slide)`` cells
        so two faults never race for the same worker call.
        """
        if shards < 1 or slides < 1:
            raise ValueError("random plan needs shards >= 1 and slides >= 1")
        rng = random.Random(seed)
        cells = [(s, t) for s in range(shards) for t in range(1, slides + 1)]
        wanted = kills + hangs
        if wanted > len(cells):
            raise ValueError(
                f"{wanted} faults do not fit in {len(cells)} (shard, slide) cells"
            )
        picked = rng.sample(cells, wanted)
        faults = [
            Fault(kind="kill", shard=s, at_slide=t) for s, t in picked[:kills]
        ] + [
            Fault(kind="hang", shard=s, at_slide=t, seconds=hang_seconds)
            for s, t in picked[kills:]
        ]
        faults.sort(key=lambda f: (f.at_slide, f.shard, f.kind))
        return cls(faults, seed=seed)
