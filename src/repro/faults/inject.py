"""Fault injectors: the hooks that replay a plan's scripted failures.

Two halves, matching where each fault kind can physically happen:

* :class:`WorkerFaultInjector` runs *inside* a shard worker and fires the
  worker kinds (``kill``/``hang``/``drop_reply``) just before the worker
  handles a ``process`` command, keyed on the slide sequence number it is
  about to process.  Restarted workers are built with ``disarm_through``
  set to the incident slide so the retried slide cannot re-kill them.
* :class:`FacadeFaultInjector` runs in the supervising facade and fires
  the storage kinds (``corrupt_wal_tail``) on a shard's durable state
  while its worker is down — the window in which real-world torn writes
  and bit rot surface.

Both injectors are pure bookkeeping when the plan is empty, and each
fault fires at most once.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, List, Optional, Sequence

from repro.faults.plan import Fault

__all__ = ["FacadeFaultInjector", "WorkerFaultInjector", "WorkerKilled"]


class WorkerKilled(BaseException):
    """A scripted worker death.

    A ``BaseException`` on purpose: worker loops must treat it as the
    sudden-death signal it simulates, and ordinary ``except Exception``
    error reporting inside engine code must not be able to swallow it.
    """


def _as_faults(faults: Sequence) -> List[Fault]:
    return [
        fault if isinstance(fault, Fault) else Fault.from_state(fault)
        for fault in faults
    ]


class WorkerFaultInjector:
    """Worker-side fault trigger, keyed on the next slide's sequence number."""

    def __init__(self, faults: Sequence, disarm_through: int = 0):
        """
        Args:
            faults: Worker-kind :class:`~repro.faults.plan.Fault` entries
                (or their ``to_state()`` documents) targeting this shard.
            disarm_through: Faults with ``at_slide`` at or below this are
                never fired — the supervisor sets it to the incident slide
                when restarting a worker, so a healed shard survives the
                retried slide.
        """
        self._faults = _as_faults(faults)
        self._disarm_through = disarm_through
        self._spent = [False] * len(self._faults)

    @property
    def armed(self) -> bool:
        """Whether any fault can still fire."""
        return any(
            not spent and fault.at_slide > self._disarm_through
            for spent, fault in zip(self._spent, self._faults)
        )

    def before_slide(
        self, target_seq: int, abandoned: Optional[Callable[[], bool]] = None
    ) -> bool:
        """Fire the faults scheduled for ``target_seq``.

        Args:
            target_seq: The slide sequence number the worker is about to
                process.
            abandoned: Optional probe the ``hang`` kind checks after its
                sleep — in-process workers cannot be killed from outside,
                so a hung worker that the supervisor has given up on must
                notice and die on its own (raising :class:`WorkerKilled`)
                instead of touching shared durable state.

        Returns:
            ``True`` when a ``drop_reply`` fault fired: the worker should
            handle the command but never answer it.

        Raises:
            WorkerKilled: a ``kill`` fault fired, or a ``hang`` fault woke
                up to find itself abandoned.
        """
        drop = False
        for index, fault in enumerate(self._faults):
            if self._spent[index]:
                continue
            if fault.at_slide != target_seq or fault.at_slide <= self._disarm_through:
                continue
            self._spent[index] = True
            if fault.kind == "hang":
                time.sleep(fault.seconds)
                if abandoned is not None and abandoned():
                    raise WorkerKilled(
                        f"abandoned during scripted {fault.seconds}s hang "
                        f"at slide {target_seq}"
                    )
            elif fault.kind == "kill":
                raise WorkerKilled(f"scripted kill at slide {target_seq}")
            elif fault.kind == "drop_reply":
                drop = True
        return drop


class FacadeFaultInjector:
    """Facade-side storage faults, applied while a shard worker is down."""

    def __init__(self, faults: Sequence):
        """``faults``: facade-kind entries (``corrupt_wal_tail``)."""
        self._faults = _as_faults(faults)
        self._spent = [False] * len(self._faults)

    def before_restart(
        self, shard: int, incident_slide: int, state_dir
    ) -> List[str]:
        """Apply this shard's pending storage faults; return descriptions.

        A ``corrupt_wal_tail`` fault applies when the incident happened at
        or after its ``at_slide`` (``at_slide`` 0 matches any incident).
        """
        applied: List[str] = []
        for index, fault in enumerate(self._faults):
            if self._spent[index] or fault.shard != shard:
                continue
            if fault.at_slide and incident_slide < fault.at_slide:
                continue
            self._spent[index] = True
            if state_dir is None:
                continue
            note = _corrupt_wal_tail(state_dir, fault.nbytes)
            if note:
                applied.append(note)
        return applied


def _corrupt_wal_tail(state_dir, nbytes: int) -> Optional[str]:
    """Flip the last ``nbytes`` payload bytes of the newest WAL segment.

    Mimics a torn or bit-rotted final append: recovery must either treat
    the damaged record as a torn tail (truncate, then heal the lost slide
    through at-least-once redelivery) or fail loudly on its checksum —
    never replay garbage.
    """
    wal_dir = pathlib.Path(state_dir) / "wal"
    segments = sorted(wal_dir.glob("wal-*.jsonl"))
    if not segments:
        return None
    path = segments[-1]
    data = path.read_bytes()
    stripped = data.rstrip(b"\n")
    if not stripped:
        return None
    last_line_start = stripped.rfind(b"\n") + 1
    line_length = len(stripped) - last_line_start
    count = min(nbytes, line_length)
    mutated = bytearray(data)
    for i in range(len(stripped) - count, len(stripped)):
        mutated[i] ^= 0xA5
    path.write_bytes(bytes(mutated))
    return f"flipped {count} tail bytes of {path.name}"
