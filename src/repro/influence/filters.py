"""Stream filters for topic-aware and location-aware SIM (Appendix A).

The paper extends SIM to topic-aware and location-aware variants by running
IC/SIC over a *sub-stream*:

* topic-aware — only actions whose topic set intersects the query topics;
* location-aware — only actions whose position falls inside the query region.

Because the frameworks require contiguous 1-based timestamps, filters
*re-time* the surviving actions (preserving order and re-linking parents
within the sub-stream).  A response whose parent was filtered out becomes a
root of the sub-stream, which matches the semantics of "influence among
query-relevant actions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Set

from repro.core.actions import Action

__all__ = ["Region", "topic_filter", "region_filter", "filter_stream"]


@dataclass(frozen=True, slots=True)
class Region:
    """An axis-aligned rectangular query region (location-aware SIM)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate region {self}")

    def contains(self, position: tuple) -> bool:
        """True when ``position = (x, y)`` lies inside the region."""
        x, y = position
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y


def topic_filter(
    topics_of: Mapping[int, Set[str]], query_topics: Iterable[str]
) -> Callable[[Action], bool]:
    """Build a predicate keeping actions relevant to ``query_topics``.

    Args:
        topics_of: The topic oracle ``T_t`` — maps action time to its topics.
        query_topics: The query's topic set ``T_q``.
    """
    query: Set[str] = set(query_topics)
    if not query:
        raise ValueError("query topic set must not be empty")

    def predicate(action: Action) -> bool:
        return bool(topics_of.get(action.time, set()) & query)

    return predicate


def region_filter(
    position_of: Mapping[int, tuple], region: Region
) -> Callable[[Action], bool]:
    """Build a predicate keeping actions located inside ``region``.

    Args:
        position_of: Maps action time to its ``(x, y)`` position.
        region: The query region ``R``.
    """

    def predicate(action: Action) -> bool:
        position = position_of.get(action.time)
        return position is not None and region.contains(position)

    return predicate


def filter_stream(
    actions: Iterable[Action],
    predicate: Callable[[Action], bool],
) -> Iterator[Action]:
    """Yield the re-timed sub-stream of actions matching ``predicate``.

    Surviving actions get contiguous timestamps 1, 2, ...; parents are
    re-linked when the parent survived too, otherwise the action becomes a
    root of the sub-stream.
    """
    new_time_of: Dict[int, int] = {}
    next_time = 1
    for action in actions:
        if not predicate(action):
            continue
        new_parent: Optional[int] = None
        if not action.is_root:
            new_parent = new_time_of.get(action.parent)
        new_time_of[action.time] = next_time
        if new_parent is None:
            yield Action.root(next_time, action.user)
        else:
            yield Action.response(next_time, action.user, new_parent)
        next_time += 1
