"""Monotone submodular influence functions ``f(I_t(S))``.

The paper's main text uses the cardinality function ``f(I_t(S)) = |I_t(S)|``
but the frameworks accept any nonnegative monotone submodular function
(Section 3, Appendix A).  Two families are provided:

* **Modular** functions — ``f`` is additive over the covered users
  (:class:`CardinalityInfluence`, :class:`WeightedCardinalityInfluence`).
  They expose per-user :meth:`InfluenceFunction.weight`, which lets oracles
  maintain coverage values incrementally in O(1) per newly covered user.

* **Non-modular** submodular functions —
  :class:`ConformityAwareInfluence` (Appendix A): the value of an influenced
  user ``v`` depends on *which* seeds influence it,
  ``w_S(v) = 1 − Π_{u∈S, v∈I(u)} (1 − Φ(u)·Ω(v))`` with offline influence
  scores ``Φ`` and conformity scores ``Ω``.  Oracles fall back to full
  re-evaluation for these.

Functions are evaluated against an *index* — any object with
``influence_set(user)`` and ``coverage(seeds)`` (both window and append-only
indexes qualify).

The built-in functions are also *serializable*: :meth:`InfluenceFunction.to_state`
returns an explicit JSON-safe schema and :func:`function_from_state` rebuilds
the function from it, which is what lets the persistence plane snapshot a
whole framework without pickling live objects.  Custom functions opt in by
overriding ``to_state`` and registering a constructor with
:func:`register_function_state`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import AbstractSet, Callable, Dict, Iterable, Mapping, Optional

__all__ = [
    "InfluenceFunction",
    "CardinalityInfluence",
    "WeightedCardinalityInfluence",
    "ConformityAwareInfluence",
    "function_from_state",
    "register_function_state",
]


class InfluenceFunction(ABC):
    """A nonnegative monotone submodular function over influenced users."""

    #: True when ``f`` is additive over covered users, enabling the fast
    #: incremental oracle path (value = Σ weight(v) over the coverage union).
    modular: bool = False

    #: When every user carries the same additive weight, that weight —
    #: oracles then compute admission gains as ``weight · |fresh members|``
    #: with one C-level set difference instead of a per-member Python loop.
    #: ``None`` for non-modular or genuinely weighted functions.
    uniform_weight: Optional[float] = None

    @abstractmethod
    def evaluate(self, seeds: Iterable[int], index) -> float:
        """Compute ``f(I(seeds))`` against an influence index."""

    def weight(self, user: int) -> float:
        """Additive weight of covering ``user`` (modular functions only)."""
        raise NotImplementedError(
            f"{type(self).__name__} is not modular and has no per-user weight"
        )

    def value_of_covered(self, covered: AbstractSet[int]) -> float:
        """``f`` applied directly to a coverage set (modular functions only)."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot be evaluated on a bare coverage set"
        )

    def to_state(self) -> dict:
        """Explicit JSON-safe state for persistence (built-ins override).

        The returned dict carries a ``"kind"`` discriminator consumed by
        :func:`function_from_state`.  Functions that do not override this
        cannot be snapshotted.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state serialization; "
            "override to_state() and register a constructor with "
            "register_function_state() to persist it"
        )


class CardinalityInfluence(InfluenceFunction):
    """The main text's ``f(I_t(S)) = |I_t(S)|``."""

    modular = True
    uniform_weight = 1.0

    def evaluate(self, seeds: Iterable[int], index) -> float:
        return float(len(index.coverage(seeds)))

    def weight(self, user: int) -> float:
        return 1.0

    def value_of_covered(self, covered: AbstractSet[int]) -> float:
        return float(len(covered))

    def to_state(self) -> dict:
        """State schema: ``{"kind": "cardinality"}`` (the function is pure)."""
        return {"kind": "cardinality"}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CardinalityInfluence()"


class WeightedCardinalityInfluence(InfluenceFunction):
    """``f(I_t(S)) = Σ_{v ∈ I_t(S)} w(v)`` with nonnegative user weights.

    Useful for value-weighted audiences (e.g. purchase propensity in viral
    marketing).  Unknown users fall back to ``default`` weight.
    """

    modular = True

    def __init__(self, weights: Mapping[int, float], default: float = 1.0):
        if default < 0:
            raise ValueError(f"default weight must be >= 0, got {default}")
        negative = [u for u, w in weights.items() if w < 0]
        if negative:
            raise ValueError(f"weights must be >= 0; negative for users {negative[:5]}")
        self._weights = dict(weights)
        self._default = default
        if not self._weights:
            # Degenerate case: every user falls back to the default weight,
            # so the uniform fast path applies.
            self.uniform_weight = default

    def evaluate(self, seeds: Iterable[int], index) -> float:
        return self.value_of_covered(index.coverage(seeds))

    def weight(self, user: int) -> float:
        return self._weights.get(user, self._default)

    def value_of_covered(self, covered: AbstractSet[int]) -> float:
        get = self._weights.get
        default = self._default
        return float(sum(get(v, default) for v in covered))

    def to_state(self) -> dict:
        """State schema: user weights as sorted ``[user, weight]`` pairs."""
        return {
            "kind": "weighted_cardinality",
            "default": self._default,
            "weights": [[u, w] for u, w in sorted(self._weights.items())],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedCardinalityInfluence({len(self._weights)} weights, "
            f"default={self._default})"
        )


class ConformityAwareInfluence(InfluenceFunction):
    """Appendix A's conformity-aware influence function.

    ``f(S) = Σ_{v ∈ I(S)} (1 − Π_{u ∈ S, v ∈ I(u)} (1 − Φ(u)·Ω(v)))``

    where ``Φ(u) ∈ [0, 1]`` is the offline influence score of seed ``u`` and
    ``Ω(v) ∈ [0, 1]`` the conformity score of user ``v``.  The function is
    monotone and submodular but *not* modular: a user influenced by two
    seeds is worth more than when influenced by either alone, with
    diminishing returns.
    """

    modular = False

    def __init__(
        self,
        influence_scores: Mapping[int, float],
        conformity_scores: Mapping[int, float],
        default_influence: float = 0.5,
        default_conformity: float = 0.5,
    ):
        for name, value in (
            ("default_influence", default_influence),
            ("default_conformity", default_conformity),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._phi = dict(influence_scores)
        self._omega = dict(conformity_scores)
        self._default_phi = default_influence
        self._default_omega = default_conformity
        self._validate_scores(self._phi, "influence")
        self._validate_scores(self._omega, "conformity")

    @staticmethod
    def _validate_scores(scores: Mapping[int, float], label: str) -> None:
        bad = [u for u, s in scores.items() if not 0.0 <= s <= 1.0]
        if bad:
            raise ValueError(f"{label} scores must lie in [0, 1]; bad users {bad[:5]}")

    def influence_score(self, user: int) -> float:
        """``Φ(user)``."""
        return self._phi.get(user, self._default_phi)

    def conformity_score(self, user: int) -> float:
        """``Ω(user)``."""
        return self._omega.get(user, self._default_omega)

    def evaluate(self, seeds: Iterable[int], index) -> float:
        seed_list = list(seeds)
        # survival[v] = Π (1 − Φ(u)·Ω(v)) over seeds u influencing v.
        survival: dict = {}
        for u in seed_list:
            phi = self.influence_score(u)
            if phi == 0.0:
                continue
            for v in index.influence_set(u):
                factor = 1.0 - phi * self.conformity_score(v)
                survival[v] = survival.get(v, 1.0) * factor
        return float(sum(1.0 - s for s in survival.values()))

    def to_state(self) -> dict:
        """State schema: Φ/Ω score tables as sorted ``[user, score]`` pairs."""
        return {
            "kind": "conformity_aware",
            "influence_scores": [[u, s] for u, s in sorted(self._phi.items())],
            "conformity_scores": [[u, s] for u, s in sorted(self._omega.items())],
            "default_influence": self._default_phi,
            "default_conformity": self._default_omega,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConformityAwareInfluence({len(self._phi)} Φ, {len(self._omega)} Ω)"
        )


_FUNCTION_STATES: Dict[str, Callable[[dict], InfluenceFunction]] = {}


def register_function_state(
    kind: str, builder: Callable[[dict], InfluenceFunction]
) -> None:
    """Register a constructor for :func:`function_from_state` under ``kind``."""
    if kind in _FUNCTION_STATES:
        raise ValueError(f"function state kind {kind!r} already registered")
    _FUNCTION_STATES[kind] = builder


def function_from_state(state: Mapping) -> InfluenceFunction:
    """Rebuild an influence function from its :meth:`~InfluenceFunction.to_state`.

    Raises:
        ValueError: when the state's ``"kind"`` is unknown.
    """
    kind = state.get("kind")
    builder = _FUNCTION_STATES.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown influence-function state kind {kind!r}; "
            f"known: {sorted(_FUNCTION_STATES)}"
        )
    return builder(dict(state))


register_function_state("cardinality", lambda state: CardinalityInfluence())
register_function_state(
    "weighted_cardinality",
    lambda state: WeightedCardinalityInfluence(
        weights={u: w for u, w in state["weights"]},
        default=state["default"],
    ),
)
register_function_state(
    "conformity_aware",
    lambda state: ConformityAwareInfluence(
        influence_scores={u: s for u, s in state["influence_scores"]},
        conformity_scores={u: s for u, s in state["conformity_scores"]},
        default_influence=state["default_influence"],
        default_conformity=state["default_conformity"],
    ),
)
