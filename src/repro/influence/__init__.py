"""Influence functions and stream filters (Section 3 and Appendix A)."""

from repro.influence.filters import (
    Region,
    filter_stream,
    region_filter,
    topic_filter,
)
from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    InfluenceFunction,
    WeightedCardinalityInfluence,
)
from repro.influence.queries import FilteredSIM, LocationAwareSIM, TopicAwareSIM

__all__ = [
    "CardinalityInfluence",
    "ConformityAwareInfluence",
    "FilteredSIM",
    "InfluenceFunction",
    "LocationAwareSIM",
    "Region",
    "TopicAwareSIM",
    "WeightedCardinalityInfluence",
    "filter_stream",
    "region_filter",
    "topic_filter",
]
