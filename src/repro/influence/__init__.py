"""Influence functions and stream filters (Section 3 and Appendix A)."""

from repro.influence.filters import (
    Region,
    filter_stream,
    region_filter,
    topic_filter,
)
from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    InfluenceFunction,
    WeightedCardinalityInfluence,
    function_from_state,
    register_function_state,
)
from repro.influence.queries import FilteredSIM, LocationAwareSIM, TopicAwareSIM

__all__ = [
    "CardinalityInfluence",
    "ConformityAwareInfluence",
    "FilteredSIM",
    "InfluenceFunction",
    "LocationAwareSIM",
    "Region",
    "TopicAwareSIM",
    "WeightedCardinalityInfluence",
    "filter_stream",
    "function_from_state",
    "region_filter",
    "register_function_state",
    "topic_filter",
]
