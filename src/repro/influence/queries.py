"""High-level topic-aware and location-aware SIM queries (Appendix A).

:mod:`repro.influence.filters` provides the offline building blocks; this
module packages them as *online* continuous queries: each query owns a SIM
processor (SIC by default) fed the re-timed sub-stream of relevant actions,
so many concurrent campaign/region queries can share one ingest loop:

    queries = [
        TopicAwareSIM({"sports"}, topic_oracle, window_size=10_000, k=10),
        LocationAwareSIM(region, position_oracle, window_size=10_000, k=10),
    ]
    for action in stream:
        for query in queries:
            query.observe(action)
    top = queries[0].query()

Filtering changes window semantics exactly as the paper prescribes: the
window covers the latest ``N`` *relevant* actions, and a response whose
parent was irrelevant becomes a root of the sub-stream.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Set

from typing import TYPE_CHECKING

from repro.core.actions import Action
from repro.influence.filters import Region

if TYPE_CHECKING:  # import-time cycle guard: core imports influence.functions
    from repro.core.base import SIMAlgorithm, SIMResult

__all__ = ["FilteredSIM", "TopicAwareSIM", "LocationAwareSIM"]


class FilteredSIM:
    """A continuous SIM query over the sub-stream matching a predicate."""

    def __init__(
        self,
        predicate: Callable[[Action], bool],
        window_size: int,
        k: int,
        beta: float = 0.2,
        algorithm: Optional[SIMAlgorithm] = None,
        batch_size: int = 1,
    ):
        """
        Args:
            predicate: Keeps the relevant actions.
            window_size: ``N`` counted in *relevant* actions.
            k: Seed-set size.
            beta: SIC trade-off parameter (ignored when ``algorithm`` given).
            algorithm: Custom SIM processor; defaults to SIC.
            batch_size: Relevant actions buffered per window slide (the
                sub-stream's ``L``).
        """
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self._predicate = predicate
        if algorithm is None:
            from repro.core.sic import SparseInfluentialCheckpoints

            algorithm = SparseInfluentialCheckpoints(
                window_size=window_size, k=k, beta=beta
            )
        self._algorithm = algorithm
        self._batch_size = batch_size
        self._new_time: Dict[int, int] = {}
        self._next_time = 1
        self._pending: list = []
        self._observed = 0
        self._matched = 0

    @property
    def algorithm(self) -> SIMAlgorithm:
        """The underlying SIM processor."""
        return self._algorithm

    @property
    def observed(self) -> int:
        """Actions seen (relevant or not)."""
        return self._observed

    @property
    def matched(self) -> int:
        """Relevant actions forwarded to the processor."""
        return self._matched

    def observe(self, action: Action) -> bool:
        """Feed one stream action; returns True when it was relevant."""
        self._observed += 1
        if not self._predicate(action):
            return False
        self._matched += 1
        new_parent = None
        if not action.is_root:
            new_parent = self._new_time.get(action.parent)
        self._new_time[action.time] = self._next_time
        if new_parent is None:
            retimed = Action.root(self._next_time, action.user)
        else:
            retimed = Action.response(self._next_time, action.user, new_parent)
        self._next_time += 1
        self._pending.append(retimed)
        if len(self._pending) >= self._batch_size:
            self.flush()
        return True

    def flush(self) -> None:
        """Slide the processor's window with any buffered actions."""
        if self._pending:
            self._algorithm.process(self._pending)
            self._pending = []

    def query(self) -> SIMResult:
        """Answer with all observed relevant actions applied."""
        self.flush()
        return self._algorithm.query()


class TopicAwareSIM(FilteredSIM):
    """Track influencers for a set of query topics (Appendix A)."""

    def __init__(
        self,
        query_topics: Set[str],
        topics_of: Mapping[int, Set[str]],
        window_size: int,
        k: int,
        **kwargs,
    ):
        """
        Args:
            query_topics: The campaign's topic set ``T_q``.
            topics_of: Topic oracle, action time -> topic set.  May be a
                live mapping that is populated as the stream progresses.
        """
        query = set(query_topics)
        if not query:
            raise ValueError("query topic set must not be empty")
        self.query_topics = frozenset(query)

        def predicate(action: Action) -> bool:
            return bool(topics_of.get(action.time, set()) & query)

        super().__init__(predicate, window_size, k, **kwargs)


class LocationAwareSIM(FilteredSIM):
    """Track influencers inside a spatial region (Appendix A)."""

    def __init__(
        self,
        region: Region,
        position_of: Mapping[int, tuple],
        window_size: int,
        k: int,
        **kwargs,
    ):
        """
        Args:
            region: The query region ``R``.
            position_of: Position oracle, action time -> ``(x, y)``.  May be
                a live mapping populated as the stream progresses.
        """
        self.region = region

        def predicate(action: Action) -> bool:
            position = position_of.get(action.time)
            return position is not None and region.contains(position)

        super().__init__(predicate, window_size, k, **kwargs)
