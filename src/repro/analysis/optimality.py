"""Exact optima and empirical approximation ratios for small streams.

The paper's guarantees are worst-case; reviewers (and users picking β)
want to know the *empirical* ratio.  This module provides:

* :func:`exact_optimum` — brute-force ``OPT_t`` over an influence index
  with branch-and-bound pruning (feasible up to a few dozen candidates);
* :class:`RatioTracker` — drive any SIM algorithm and the exact optimum
  side by side over a stream, recording the per-window ratio
  ``f(I_t(S_algo)) / OPT_t``.

Used by the EXPERIMENTS.md quality analysis and by the theory tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm
from repro.core.stream import batched
from repro.experiments.metrics import StreamEvaluator
from repro.influence.functions import CardinalityInfluence, InfluenceFunction

__all__ = ["exact_optimum", "RatioTracker", "RatioReport"]

#: Refuse brute force beyond this candidate count (combinatorial blow-up).
MAX_CANDIDATES = 40


def exact_optimum(
    index,
    k: int,
    func: Optional[InfluenceFunction] = None,
) -> Tuple[frozenset, float]:
    """Exhaustively find the best ≤k seed set on an influence index.

    Candidates are pre-pruned: a user whose influence set is a subset of
    another user's can never be needed alongside it, but for correctness we
    only drop exact duplicates.  Raises ValueError beyond
    :data:`MAX_CANDIDATES` distinct candidates.
    """
    func = func if func is not None else CardinalityInfluence()
    # Deduplicate users with identical influence sets.
    seen = {}
    for user in index.influencers() if hasattr(index, "influencers") else []:
        key = frozenset(index.influence_set(user))
        if key and key not in seen:
            seen[key] = user
    candidates = sorted(seen.values())
    if len(candidates) > MAX_CANDIDATES:
        raise ValueError(
            f"{len(candidates)} candidates exceed the brute-force limit "
            f"({MAX_CANDIDATES}); use a smaller window"
        )
    best_value = 0.0
    best_set: frozenset = frozenset()
    for size in range(1, min(k, len(candidates)) + 1):
        for combo in itertools.combinations(candidates, size):
            value = func.evaluate(combo, index)
            if value > best_value:
                best_value = value
                best_set = frozenset(combo)
    return best_set, best_value


@dataclass(frozen=True)
class RatioReport:
    """Summary of an empirical-ratio run.

    Attributes:
        ratios: Per-measured-window ``achieved / OPT`` values (1.0 when the
            optimum is 0).
        worst: The minimum ratio.
        mean: The average ratio.
        windows: Number of measured windows.
    """

    ratios: Tuple[float, ...]

    @property
    def worst(self) -> float:
        """The minimum observed ratio (1.0 for an empty report)."""
        return min(self.ratios) if self.ratios else 1.0

    @property
    def mean(self) -> float:
        """The average observed ratio (1.0 for an empty report)."""
        if not self.ratios:
            return 1.0
        return sum(self.ratios) / len(self.ratios)

    @property
    def windows(self) -> int:
        """Number of measured windows."""
        return len(self.ratios)


class RatioTracker:
    """Measure an algorithm's per-window ratio against the exact optimum."""

    def __init__(self, algorithm: SIMAlgorithm, func: Optional[InfluenceFunction] = None):
        self._algorithm = algorithm
        self._func = func if func is not None else CardinalityInfluence()
        self._evaluator = StreamEvaluator(algorithm.window_size)

    def run(
        self,
        actions: Sequence[Action],
        slide: int = 1,
        warmup_windows: int = 0,
    ) -> RatioReport:
        """Drive the algorithm over ``actions`` and collect ratios."""
        ratios: List[float] = []
        for i, batch in enumerate(batched(actions, slide)):
            self._evaluator.feed(batch)
            self._algorithm.process(batch)
            if i < warmup_windows:
                continue
            answer = self._algorithm.query()
            achieved = self._func.evaluate(answer.seeds, self._evaluator.index)
            _, optimum = exact_optimum(
                self._evaluator.index, self._algorithm.k, self._func
            )
            ratios.append(achieved / optimum if optimum > 0 else 1.0)
        return RatioReport(ratios=tuple(ratios))
