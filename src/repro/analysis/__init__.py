"""Analysis helpers: exact optima and empirical approximation ratios."""

from repro.analysis.optimality import RatioReport, RatioTracker, exact_optimum

__all__ = ["RatioReport", "RatioTracker", "exact_optimum"]
