"""Graph substrate: DiGraph, R-MAT generation, WC model, influence graphs."""

from repro.graphs.graph import DiGraph
from repro.graphs.influence_graph import build_influence_graph
from repro.graphs.rmat import rmat_adjacency, rmat_edges
from repro.graphs.wc_model import (
    assign_weighted_cascade,
    weighted_cascade_probability,
)

__all__ = [
    "DiGraph",
    "assign_weighted_cascade",
    "build_influence_graph",
    "rmat_adjacency",
    "rmat_edges",
    "weighted_cascade_probability",
]
