"""The weighted cascade (WC) model of Kempe, Kleinberg, Tardos (KDD 2003).

Under WC, every edge ``u → v`` activates independently with probability
``1 / indegree(v)``: a user's attention is divided equally across the users
influencing them.  The paper assigns WC probabilities to the influence
graphs fed to IMM and UBI and to the Monte-Carlo quality metric
(Section 6.1).
"""

from __future__ import annotations

from repro.graphs.graph import DiGraph

__all__ = ["assign_weighted_cascade", "weighted_cascade_probability"]


def weighted_cascade_probability(in_degree: int) -> float:
    """``p = 1 / indegree`` (0 for isolated targets, which have no edges)."""
    if in_degree <= 0:
        raise ValueError(f"in-degree must be positive, got {in_degree}")
    return 1.0 / in_degree


def assign_weighted_cascade(graph: DiGraph) -> DiGraph:
    """Overwrite all edge probabilities in place with WC values.

    Returns the same graph for chaining.
    """
    for node in list(graph.nodes()):
        predecessors = graph.predecessors(node)
        if not predecessors:
            continue
        probability = weighted_cascade_probability(len(predecessors))
        for source in list(predecessors):
            graph.add_edge(source, node, probability)
    return graph
