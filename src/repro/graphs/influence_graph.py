"""Building the influence graph ``G_t`` from a window of actions.

Section 6.1: "we construct an influence graph ``G_t`` by treating users as
vertices and the influence relationships between users wrt. ``W_t`` as
directed edges.  The edge probabilities between users are assigned by the
weighted cascade (WC) model."  This graph is the common substrate of the
IMM/UBI baselines and of the Monte-Carlo quality metric.

The influence relationships are exactly the pairs materialised by
:class:`~repro.core.influence_index.WindowInfluenceIndex`; self-influence
pairs ``(u, u)`` are skipped because cascade models have no self-loops.
"""

from __future__ import annotations

from repro.core.influence_index import WindowInfluenceIndex
from repro.graphs.graph import DiGraph
from repro.graphs.wc_model import assign_weighted_cascade

__all__ = ["build_influence_graph"]


def build_influence_graph(index: WindowInfluenceIndex) -> DiGraph:
    """Materialise ``G_t`` from the current window's influence pairs.

    Args:
        index: The exact windowed influence index.

    Returns:
        A :class:`~repro.graphs.graph.DiGraph` whose edge ``u → v`` means
        ``u`` influences ``v`` in the window, with WC probabilities
        ``p(u, v) = 1 / indegree(v)``.
    """
    graph = DiGraph()
    for u, v, _count in index.edges():
        if u != v:
            graph.add_edge(u, v, 1.0)
    assign_weighted_cascade(graph)
    return graph
