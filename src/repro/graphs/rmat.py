"""R-MAT recursive graph generator (Chakrabarti, Zhan, Faloutsos; SDM 2004).

Section 6.1 synthesises power-law *follow* graphs with R-MAT: each edge
lands in one of the four quadrants of the (recursively subdivided) adjacency
matrix with probabilities ``(a, b, c, d)``.  The classic skewed setting
``a=0.57, b=0.19, c=0.19, d=0.05`` produces the heavy-tailed in/out-degree
distributions typical of social networks.

The generator returns plain ``(source, target)`` pairs over node ids
``0..n-1`` (``n`` rounded up to a power of two internally, ids taken modulo
``n`` so callers always see the requested universe).  Self-loops and
duplicate edges are dropped, matching common R-MAT usage.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

import numpy as np

__all__ = ["rmat_edges", "rmat_adjacency"]


def rmat_edges(
    n_nodes: int,
    n_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Generate distinct directed R-MAT edges.

    Args:
        n_nodes: Size of the node universe (ids ``0..n_nodes-1``).
        n_edges: Number of *distinct* edges requested; fewer may be returned
            if the quadrant probabilities make duplicates dominate (the
            generator gives up after ``20 × n_edges`` attempts).
        a, b, c: Quadrant probabilities (``d = 1 - a - b - c``).
        seed: RNG seed for reproducibility.

    Returns:
        A list of ``(source, target)`` pairs without self-loops/duplicates.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    if n_edges < 0:
        raise ValueError(f"edge count must be non-negative, got {n_edges}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError(f"invalid quadrant probabilities a={a} b={b} c={c} d={d}")
    rng = np.random.default_rng(seed)
    levels = max(1, math.ceil(math.log2(n_nodes)))
    edges: Set[Tuple[int, int]] = set()
    attempts = 0
    max_attempts = max(20 * n_edges, 1000)
    # Vectorised batches: each edge needs `levels` quadrant draws.
    batch = max(1024, n_edges)
    thresholds = np.cumsum([a, b, c])
    while len(edges) < n_edges and attempts < max_attempts:
        draws = rng.random((batch, levels))
        quadrant = np.searchsorted(thresholds, draws)  # 0..3 per level
        row_bits = (quadrant >> 1) & 1  # quadrants 2,3 pick the lower half
        col_bits = quadrant & 1  # quadrants 1,3 pick the right half
        weights = 1 << np.arange(levels - 1, -1, -1)
        sources = (row_bits * weights).sum(axis=1) % n_nodes
        targets = (col_bits * weights).sum(axis=1) % n_nodes
        for s, t in zip(sources.tolist(), targets.tolist()):
            attempts += 1
            if s != t:
                edges.add((s, t))
                if len(edges) == n_edges:
                    break
    return sorted(edges)


def rmat_adjacency(
    n_nodes: int,
    n_edges: int,
    seed: Optional[int] = None,
    **kwargs,
) -> dict:
    """R-MAT as an adjacency dict ``{source: [targets...]}`` (sorted)."""
    adjacency: dict = {}
    for source, target in rmat_edges(n_nodes, n_edges, seed=seed, **kwargs):
        adjacency.setdefault(source, []).append(target)
    return adjacency
