"""A lightweight directed graph with edge probabilities.

The influence graphs ``G_t`` of Section 6.1 are small relative to the user
universe (only users active around the current window appear), change every
window, and are consumed by three clients with different access patterns:

* Monte-Carlo diffusion — forward adjacency with probabilities;
* RR-set sampling (IMM) — reverse adjacency with probabilities;
* the WC model — in-degrees.

:class:`DiGraph` therefore keeps dict-of-dict adjacency in both directions.
Nodes are integers; parallel edges collapse (last probability wins unless
merged by the caller); self-loops are rejected because influence-graph
semantics exclude them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

__all__ = ["DiGraph"]


class DiGraph:
    """Directed graph with per-edge activation probabilities."""

    def __init__(self) -> None:
        self._succ: Dict[int, Dict[int, float]] = {}
        self._pred: Dict[int, Dict[int, float]] = {}
        self._edge_count = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists (no-op when present)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, source: int, target: int, probability: float = 1.0) -> None:
        """Insert or overwrite the edge ``source → target``."""
        if source == target:
            raise ValueError(f"self-loop on node {source} not allowed")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.add_node(source)
        self.add_node(target)
        if target not in self._succ[source]:
            self._edge_count += 1
        self._succ[source][target] = probability
        self._pred[target][source] = probability

    # -- inspection ----------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        return self._edge_count

    def __contains__(self, node: int) -> bool:
        return node in self._succ

    def nodes(self) -> Iterator[int]:
        """Iterate over all nodes."""
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(source, target, probability)`` triples."""
        for source, targets in self._succ.items():
            for target, probability in targets.items():
                yield source, target, probability

    def successors(self, node: int) -> Dict[int, float]:
        """Outgoing ``{target: probability}`` (live view, do not mutate)."""
        return self._succ.get(node, {})

    def predecessors(self, node: int) -> Dict[int, float]:
        """Incoming ``{source: probability}`` (live view, do not mutate)."""
        return self._pred.get(node, {})

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges."""
        return len(self._succ.get(node, ()))

    def in_degree(self, node: int) -> int:
        """Number of incoming edges."""
        return len(self._pred.get(node, ()))

    def has_edge(self, source: int, target: int) -> bool:
        """True when ``source → target`` exists."""
        return target in self._succ.get(source, ())

    def probability(self, source: int, target: int) -> float:
        """Activation probability of an existing edge.

        Raises:
            KeyError: when the edge is absent.
        """
        return self._succ[source][target]

    def copy(self) -> "DiGraph":
        """Deep copy (probabilities included)."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for source, target, probability in self.edges():
            clone.add_edge(source, target, probability)
        return clone

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int, float]]) -> "DiGraph":
        """Build a graph from ``(source, target, probability)`` triples."""
        graph = cls()
        for source, target, probability in edges:
            graph.add_edge(source, target, probability)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph({self.node_count} nodes, {self.edge_count} edges)"
